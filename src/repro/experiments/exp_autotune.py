"""E17 — autotuner convergence across the device zoo.

The closed-loop claim of :mod:`repro.tuning`: starting from a node size a
factor of 16 away from each device's sweep optimum, one
probe -> fit -> solve -> rebuild pass lands within 2x of the optimum that
an exhaustive per-device node-size sweep finds — on *every* device in the
zoo, HDDs and SSDs and affine extremes alike.

The foil is the static-configuration check: over the same fitted device
models at the paper's reference scale (``N/M = 1000``, where tree height
actually varies with node size), *no* single node size stays within 2x of
optimal on all devices — the alpha spread of the zoo (about three decades)
makes per-device tuning necessary, not just nice (Figure 2's point,
stretched across devices).

Protocol per device:

1. sweep ``node_sizes``, bulk-loading a fresh B-tree per size and
   measuring warm random point queries (per-op simulated seconds);
2. build the tree at a deliberately bad size (sweep optimum shifted 16x,
   direction chosen to stay inside the sweep range);
3. run one :class:`~repro.tuning.AutoTuner` pass on the live device:
   calibrate, recommend, bulk-rebuild; measure the tuned tree the same
   way;
4. report ``tuned / sweep-best`` — the convergence ratio.

The calibration round-trip on ideal devices (alpha and P recovered within
5%, R² >= 0.98) is covered by ``tests/tuning`` and the benchmark gate in
``benchmarks/bench_autotune.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from typing import Any

from repro.experiments import report
from repro.experiments.common import build_load, measure_tree_ops
from repro.experiments.devices import tuning_zoo
from repro.models.analysis import btree_op_cost
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep
from repro.storage.stack import StorageStack
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.sizing import EntryFormat
from repro.tuning import AutoTuner, DeviceProfile

DEFAULT_NODE_SIZES = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20)

#: Reference scale for the static-config impossibility check: a big-data
#: regime where the tree is far bigger than the cache, so node size moves
#: the uncached height (2-3 levels) — not the scaled-down loads the
#: measured sweep can afford, whose height clamps at one uncached level.
REFERENCE_N_OVER_M = 1e6
REFERENCE_M_ENTRIES = 1e6


@dataclass
class DeviceTuneRow:
    """One device's sweep, bad start, and tuned outcome."""

    name: str
    profile: DeviceProfile
    sweep_ms: list[float]
    sweep_best_bytes: int
    sweep_best_ms: float
    start_bytes: int
    start_ms: float
    tuned_bytes: int
    tuned_ms: float

    @property
    def convergence_ratio(self) -> float:
        """Tuned per-op time over the sweep optimum (the 2x criterion)."""
        return self.tuned_ms / self.sweep_best_ms

    @property
    def start_ratio(self) -> float:
        """How bad the deliberately bad start was, for contrast."""
        return self.start_ms / self.sweep_best_ms


@dataclass
class AutotuneResult:
    """E17: per-device convergence plus the static-config foil."""

    node_sizes: tuple[int, ...]
    n_entries: int
    cache_bytes: int
    rows: list[DeviceTuneRow] = field(default_factory=list)
    best_static_bytes: int | None = None
    best_static_worst_ratio: float | None = None

    @property
    def max_convergence_ratio(self) -> float:
        """Worst tuned/optimal ratio across the zoo (must be <= 2)."""
        return max(row.convergence_ratio for row in self.rows)

    def render(self) -> str:
        columns = [
            "device", "alpha/entry", "P", "sweep best", "best ms/op",
            "start", "start ms/op", "tuned", "tuned ms/op", "ratio",
        ]
        fmt = EntryFormat()
        table_rows = []
        for row in self.rows:
            pdam = row.profile.pdam
            table_rows.append([
                row.name,
                f"{row.profile.alpha_per_entry(fmt.entry_bytes):.3g}",
                f"{pdam.parallelism:.1f}" if pdam is not None else "-",
                report.format_bytes(row.sweep_best_bytes),
                f"{row.sweep_best_ms:.4g}",
                report.format_bytes(row.start_bytes),
                f"{row.start_ms:.4g}",
                report.format_bytes(row.tuned_bytes),
                f"{row.tuned_ms:.4g}",
                f"{row.convergence_ratio:.2f}",
            ])
        note = (
            f"Worst tuned/optimal ratio: {self.max_convergence_ratio:.2f} "
            f"(criterion: <= 2 on every device)."
        )
        if self.best_static_worst_ratio is not None:
            note += (
                f"  Static foil at N/M={REFERENCE_N_OVER_M:.0f}: the best "
                f"single node size ({report.format_bytes(self.best_static_bytes)}) "
                f"is {self.best_static_worst_ratio:.2f}x off optimal on its "
                f"worst device (criterion: > 2, so no static config suffices)."
            )
        return report.render_table(
            f"E17: autotune convergence, 16x-off start "
            f"(N={self.n_entries}, M={report.format_bytes(self.cache_bytes)})",
            columns,
            table_rows,
            note=note,
        )


def _measure_query_ms(device, node_bytes, pairs, keys, universe, *,
                      cache_bytes, n_queries, warmup_queries, seed):
    """Bulk-load a fresh B-tree at ``node_bytes`` and time warm queries."""
    storage = StorageStack(device, cache_bytes)
    tree = BTree(storage, BTreeConfig(node_bytes=node_bytes))
    tree.bulk_load(pairs)
    times = measure_tree_ops(
        tree, keys, universe, n_queries=n_queries, n_inserts=1,
        warmup_queries=warmup_queries, seed=seed,
    )
    return tree, times.query_seconds_per_op * 1e3


def _bad_start(best_bytes: int, node_sizes: tuple[int, ...]) -> int:
    """Shift the sweep optimum 16x, staying inside the sweep range."""
    lo, hi = min(node_sizes), max(node_sizes)
    candidate = best_bytes // 16
    if candidate < lo:
        candidate = best_bytes * 16
    return max(lo, min(hi, candidate))


def static_config_worst_ratios(
    profiles: dict[str, DeviceProfile],
    *,
    fmt: EntryFormat = EntryFormat(),
    n_grid: int = 160,
) -> dict[float, float]:
    """Model-predicted worst-case ratio of each static node size (entries).

    For every candidate node size ``B`` (log grid, 4 entries .. 1M entries)
    and every fitted device model, compute ``cost(B) / min_B cost`` at the
    reference scale; return ``B -> max over devices`` of that ratio.  The
    impossibility claim is ``min over B of max over devices > 2``.
    """
    N = REFERENCE_N_OVER_M * REFERENCE_M_ENTRIES
    M = REFERENCE_M_ENTRIES
    grid = [
        math.exp(math.log(4.0) + i * (math.log(1e6) - math.log(4.0)) / (n_grid - 1))
        for i in range(n_grid)
    ]
    worst: dict[float, float] = {b: 0.0 for b in grid}
    for profile in profiles.values():
        alpha_e = profile.alpha_per_entry(fmt.entry_bytes)
        costs = {b: btree_op_cost(b, alpha_e, N, M) for b in grid}
        best = min(costs.values())
        for b, c in costs.items():
            worst[b] = max(worst[b], c / best)
    return worst


def measure_device(
    name: str,
    *,
    node_sizes: tuple[int, ...],
    n_entries: int,
    cache_bytes: int,
    universe: int,
    n_queries: int,
    warmup_queries: int = 200,
    seed: int = 0,
) -> dict[str, Any]:
    """The per-device E17 protocol: sweep, mis-configure, tune, re-measure.

    This is the body of the ``autotune_device`` sweep kernel: it builds its
    own zoo device (device state — clock, RNG, head position — carries
    across the sweep/bad-start/tuned phases, exactly as the serial loop
    had it) and returns a picklable dict of every :class:`DeviceTuneRow`
    field plus the fitted profile.
    """
    fmt = EntryFormat()
    pairs, keys = build_load(n_entries, universe, seed=seed)
    device = tuning_zoo(seed=seed)[name]
    sweep_ms = []
    for node_bytes in node_sizes:
        _, ms = _measure_query_ms(
            device, node_bytes, pairs, keys, universe,
            cache_bytes=cache_bytes, n_queries=n_queries,
            warmup_queries=warmup_queries, seed=seed,
        )
        sweep_ms.append(ms)
    best_idx = min(range(len(node_sizes)), key=sweep_ms.__getitem__)
    best_bytes, best_ms = node_sizes[best_idx], sweep_ms[best_idx]

    start_bytes = _bad_start(best_bytes, node_sizes)
    bad_tree, start_ms = _measure_query_ms(
        device, start_bytes, pairs, keys, universe,
        cache_bytes=cache_bytes, n_queries=n_queries,
        warmup_queries=warmup_queries, seed=seed + 1,
    )

    tuner = AutoTuner(device, fmt=fmt, seed=seed)
    profile = tuner.calibrate()
    # Serial point queries cannot use PDAM slots, so solve the serial
    # Corollary 6/7 optimum even on devices with fitted parallelism.
    rec = tuner.recommend(
        n_entries=n_entries, cache_bytes=cache_bytes,
        prefer_parallel_layout=False,
    )
    outcome = tuner.apply(
        bad_tree,
        rec,
        lambda: BTree(
            StorageStack(device, cache_bytes),
            BTreeConfig(node_bytes=rec.node_bytes),
        ),
        current_node_bytes=start_bytes,
        current_per_op_seconds=start_ms / 1e3,
    )
    times = measure_tree_ops(
        outcome.tree, keys, universe, n_queries=n_queries, n_inserts=1,
        warmup_queries=warmup_queries, seed=seed + 2,
    )
    return {
        "name": name,
        "profile": profile,
        "sweep_ms": sweep_ms,
        "sweep_best_bytes": best_bytes,
        "sweep_best_ms": best_ms,
        "start_bytes": start_bytes,
        "start_ms": start_ms,
        "tuned_bytes": rec.node_bytes,
        "tuned_ms": times.query_seconds_per_op * 1e3,
    }


def sweep_spec(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 600_000,
    cache_bytes: int = 16 << 20,
    universe: int = 1 << 31,
    n_queries: int = 150,
    warmup_queries: int = 200,
    devices: tuple[str, ...] | None = None,
    seed: int = 0,
) -> SweepSpec:
    """The E17 sweep: one ``autotune_device`` point per zoo device."""
    names = devices if devices is not None else tuple(tuning_zoo(seed=seed))
    return SweepSpec.make(
        "autotune",
        [
            SweepPoint.make(
                "autotune_device",
                device=name,
                node_sizes=tuple(node_sizes),
                n_entries=n_entries,
                cache_bytes=cache_bytes,
                universe=universe,
                n_queries=n_queries,
                warmup_queries=warmup_queries,
                seed=seed,
            )
            for name in names
        ],
    )


def run(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 600_000,
    cache_bytes: int = 16 << 20,
    universe: int = 1 << 31,
    n_queries: int = 150,
    warmup_queries: int = 200,
    devices: tuple[str, ...] | None = None,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> AutotuneResult:
    """Sweep, mis-configure, tune, and compare on every zoo device."""
    fmt = EntryFormat()
    spec = sweep_spec(
        node_sizes=tuple(node_sizes),
        n_entries=n_entries,
        cache_bytes=cache_bytes,
        universe=universe,
        n_queries=n_queries,
        warmup_queries=warmup_queries,
        devices=devices,
        seed=seed,
    )
    result = AutotuneResult(
        node_sizes=tuple(node_sizes), n_entries=n_entries, cache_bytes=cache_bytes
    )
    profiles: dict[str, DeviceProfile] = {}
    for row in run_sweep(spec, jobs=jobs, cache=cache):
        profiles[row["name"]] = row["profile"]
        result.rows.append(DeviceTuneRow(**row))

    if len(profiles) >= 2:
        worst = static_config_worst_ratios(profiles, fmt=fmt)
        best_b = min(worst, key=worst.__getitem__)
        result.best_static_bytes = fmt.leaf_bytes(max(2, round(best_b)))
        result.best_static_worst_ratio = worst[best_b]
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
