"""E21 — durability knobs across cost models: the WAL is a node-size problem.

Corollaries 6/7 say the optimal *node* size moves when the DAM's "every
IO costs one block" gives way to the affine ``1 + alpha*k`` charge.  The
same argument applies verbatim to the write path's group-commit batch:
a commit is one sequential write of ``k`` framed records, so

* under the **DAM** (constant latency ``L``) its per-op cost is ``L/k``;
* under the **affine** model it is ``s/k + t*frame`` — the setup ``s``
  amortizes, the bandwidth term does not;
* under the **PDAM** a whole batch usually fits one parallel step, so it
  prices like the DAM until the blob spans more than ``P`` blocks.

Against that saving stands the durability price of batching: a crash
loses the unacked tail of the current group — every op in it must be
resubmitted by its client, at a fixed SLO penalty per lost op — plus the
recovery downtime.  The objective per op is

    J(k) = run/op + rho * (recovery_seconds + exposure * loss_penalty)

with ``rho`` the crash rate per op and ``exposure`` the *measured* mean
number of unacked records over the run (``~(k-1)/2``).  Minimizing J
gives the classic ``k* ~ sqrt(2 * setup / (rho * loss_penalty))`` — and
because the affine setup ``s`` is much larger than the DAM's ``L``, the
affine-optimal batch is measurably larger than the DAM-optimal one,
while the PDAM (whose parallel step prices like the DAM until the blob
spans more than ``P`` blocks) agrees with the DAM.  The checkpoint
interval trades the same way against replay length.

Every point is a registered pure kernel (``durability_point``) and the
recovered contents are verified against the acked-prefix dict model
inside the kernel, so the sweep doubles as a crash-consistency gate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.experiments import report
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

DEFAULT_DEVICES = ("dam", "affine", "pdam")
DEFAULT_GROUP_COMMITS = (1, 2, 4, 8, 16, 32, 64)
DEFAULT_CHECKPOINTS = (0, 100, 400)

#: DAM block latency (seconds); also the PDAM step time.
DAM_LATENCY = 1e-3

#: Crashes per op in the amortized objective — high enough that the loss
#: term bends J(k) back up inside the swept range.
DEFAULT_CRASH_RATE = 0.01

#: Client-side cost of one lost (unacked, must-resubmit) op, in seconds.
#: Deliberately device-independent: the retry round-trip is an SLO price,
#: which is what lets the commit *setup* cost drive the optimum apart.
DEFAULT_LOSS_PENALTY = 0.02

#: Where in the workload's IO stream the measured crash lands.
DEFAULT_CRASH_FRACTION = 0.6


def make_durability_device(device: str, *, node_bytes: int) -> Any:
    """One of the three cost-model devices the sweep compares."""
    if device == "dam":
        from repro.storage.ram import ConstantLatencyDevice

        return ConstantLatencyDevice(DAM_LATENCY)
    if device == "affine":
        from repro.experiments.devices import make_affine

        return make_affine("affine-lowalpha-sim")
    if device == "pdam":
        from repro.models.pdam import PDAMModel
        from repro.storage.ideal import PDAMDevice

        return PDAMDevice(PDAMModel(4, node_bytes, DAM_LATENCY))
    raise ConfigurationError(
        f"unknown device {device!r}; expected one of {DEFAULT_DEVICES}"
    )


# -- kernel body (called via repro.runner.kernels) ---------------------------


def measure_durability(
    *,
    device: str,
    tree: str,
    group_commit: int,
    checkpoint_every: int,
    n_ops: int,
    n_load: int,
    universe: int,
    node_bytes: int,
    cache_bytes: int,
    wal_bytes: int,
    crash_rate: float,
    loss_penalty: float,
    crash_fraction: float,
    seed: int,
) -> dict[str, Any]:
    """One (device, group_commit, checkpoint_every) durability point.

    Two executions of the same seeded write-heavy workload: a crash-free
    run measures the durable write path's cost and the mean unacked
    exposure, then a fresh system runs into a crash at ``crash_fraction``
    of the first run's IO stream, recovers, and is verified against the
    acked-prefix dict model.
    """
    from repro.faults import CrashPlan, FaultPlan, FaultyDevice
    from repro.recovery import (
        DurableConfig,
        DurableTree,
        expected_contents,
        generate_workload,
    )

    config = DurableConfig(
        tree=tree,
        node_bytes=node_bytes,
        cache_bytes=cache_bytes,
        wal_bytes=wal_bytes,
        group_commit=group_commit,
        checkpoint_every=checkpoint_every,
    )
    load_pairs, ops = generate_workload(
        n_ops,
        universe=universe,
        seed=seed,
        n_load=n_load,
        put_weight=0.8,
        delete_weight=0.1,
    )
    n_writes = sum(1 for op, _, _ in ops if op != "g")

    def build() -> tuple[FaultyDevice, DurableTree]:
        inner = make_durability_device(device, node_bytes=node_bytes)
        fdev = FaultyDevice(inner, FaultPlan())
        durable = DurableTree(fdev, config)
        durable.load(list(load_pairs))
        return fdev, durable

    def run_ops(durable: DurableTree) -> int:
        """Apply the stream; returns the summed post-op unacked counts."""
        pending_sum = 0
        for op, key, value in ops:
            if op == "p":
                durable.put(key, value)
            elif op == "d":
                durable.delete(key)
            else:
                durable.get(key)
            if op != "g":
                pending_sum += durable.wal.pending_records
        durable.sync()
        return pending_sum

    # Crash-free run: the durable write path's cost at these knobs.
    fdev, durable = build()
    fdev.arm_crash(None)  # ordinals count from the start of traffic
    t0 = durable.io_seconds
    pending_sum = run_ops(durable)
    run_seconds = durable.io_seconds - t0
    total_io = fdev.io_ordinal
    wal_seconds = durable.wal.write_seconds
    commits = durable.wal.commits
    checkpoints = durable.checkpoints_taken
    run_per_op = run_seconds / n_writes
    # A crash at a uniformly random moment loses the unacked tail of the
    # current group; its expectation is the run's mean pending depth.
    exposure = pending_sum / n_writes

    # Crash run: same workload, crash mid-stream, recover, verify.
    from repro.errors import DeviceCrashed

    fdev, durable = build()
    crash_io = max(0, min(total_io - 1, int(crash_fraction * total_io)))
    fdev.arm_crash(CrashPlan(seed=seed ^ 0x9E3779B9, at_io=crash_io))
    lost_ops = 0
    recovery_seconds = 0.0
    replayed = 0
    recovered_ok = True
    try:
        run_ops(durable)
    except DeviceCrashed:
        acked = durable.wal.committed_lsn
        lost_ops = (durable.wal.next_lsn - 1) - acked
        rec = durable.recover()
        recovery_seconds = rec.recovery_seconds
        replayed = rec.replayed_records
        recovered_ok = durable.contents() == expected_contents(
            load_pairs, ops, acked
        )

    cost_per_op = run_per_op + crash_rate * (
        recovery_seconds + exposure * loss_penalty
    )
    return {
        "device": device,
        "tree": tree,
        "group_commit": group_commit,
        "checkpoint_every": checkpoint_every,
        "run_per_op_ms": run_per_op * 1e3,
        "wal_frac": wal_seconds / run_seconds if run_seconds else 0.0,
        "commits": commits,
        "checkpoints": checkpoints,
        "exposure": exposure,
        "lost_ops": lost_ops,
        "replayed": replayed,
        "recovery_ms": recovery_seconds * 1e3,
        "cost_per_op_ms": cost_per_op * 1e3,
        "recovered_ok": recovered_ok,
    }


# -- sweep + result ----------------------------------------------------------


@dataclass
class DurabilityResult:
    """One row per (device, group_commit, checkpoint_every)."""

    devices: tuple[str, ...]
    group_commits: tuple[int, ...]
    checkpoints: tuple[int, ...]
    crash_rate: float
    rows: list[dict[str, Any]] = field(default_factory=list)

    def argmin_batch(self, device: str, *, checkpoint_every: int = 0) -> int:
        """The J-minimizing group-commit batch for one device."""
        rows = [
            r
            for r in self.rows
            if r["device"] == device and r["checkpoint_every"] == checkpoint_every
        ]
        if not rows:
            raise ConfigurationError(f"no rows for device {device!r}")
        return min(rows, key=lambda r: r["cost_per_op_ms"])["group_commit"]

    def render(self) -> str:
        optima = ", ".join(
            f"{d}: k*={self.argmin_batch(d, checkpoint_every=self.checkpoints[0])}"
            for d in self.devices
        )
        return report.render_table(
            "E21: durability knobs vs cost model (group commit, checkpoints)",
            ["device", "k", "ckpt", "run/op ms", "wal%", "expos",
             "lost", "recov ms", "J(k) ms", "ok"],
            [
                [r["device"], r["group_commit"], r["checkpoint_every"],
                 f"{r['run_per_op_ms']:.3f}", f"{100 * r['wal_frac']:.0f}",
                 f"{r['exposure']:.1f}", r["lost_ops"],
                 f"{r['recovery_ms']:.2f}", f"{r['cost_per_op_ms']:.3f}",
                 "yes" if r["recovered_ok"] else "NO"]
                for r in self.rows
            ],
            note=(
                f"J(k) = run/op + {self.crash_rate:g} * (recovery + exposure"
                " * loss_penalty); cost-minimizing batches at ckpt="
                f"{self.checkpoints[0]}: {optima}.  The affine setup cost "
                "amortizes over the batch, so its optimum sits at larger k "
                "than the DAM's — Corollary 6/7 applied to the write path."
            ),
        )


def sweep_spec(
    *,
    devices: tuple[str, ...] = DEFAULT_DEVICES,
    group_commits: tuple[int, ...] = DEFAULT_GROUP_COMMITS,
    checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
    tree: str = "btree",
    n_ops: int = 600,
    n_load: int = 256,
    universe: int = 1 << 18,
    node_bytes: int = 4096,
    cache_bytes: int = 32 << 10,
    wal_bytes: int = 16 << 20,
    crash_rate: float = DEFAULT_CRASH_RATE,
    loss_penalty: float = DEFAULT_LOSS_PENALTY,
    crash_fraction: float = DEFAULT_CRASH_FRACTION,
    seed: int = 0,
) -> SweepSpec:
    """The E21 sweep: one kernel point per (device, batch, checkpoint)."""
    points = [
        SweepPoint.make(
            "durability_point",
            device=device,
            tree=tree,
            group_commit=int(k),
            checkpoint_every=int(ckpt),
            n_ops=n_ops,
            n_load=n_load,
            universe=universe,
            node_bytes=node_bytes,
            cache_bytes=cache_bytes,
            wal_bytes=wal_bytes,
            crash_rate=crash_rate,
            loss_penalty=loss_penalty,
            crash_fraction=crash_fraction,
            seed=seed,
        )
        for device in devices
        for ckpt in checkpoints
        for k in group_commits
    ]
    return SweepSpec.make("durability", points)


def run(
    *,
    devices: tuple[str, ...] = DEFAULT_DEVICES,
    group_commits: tuple[int, ...] = DEFAULT_GROUP_COMMITS,
    checkpoints: tuple[int, ...] = DEFAULT_CHECKPOINTS,
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> DurabilityResult:
    """Sweep group-commit batch x checkpoint interval x cost model.

    ``quick`` shrinks to CI-smoke size (fewer batches, one checkpoint
    interval, shorter workload) but keeps all three devices — the
    model-dependent-optimum comparison is the point.
    """
    sizes: dict[str, Any] = {}
    if quick:
        if tuple(group_commits) == DEFAULT_GROUP_COMMITS:
            group_commits = (1, 4, 16, 64)
        if tuple(checkpoints) == DEFAULT_CHECKPOINTS:
            checkpoints = (0,)
        sizes = dict(n_ops=240, n_load=128)
    spec = sweep_spec(
        devices=tuple(devices),
        group_commits=tuple(group_commits),
        checkpoints=tuple(checkpoints),
        seed=seed,
        **sizes,
    )
    result = DurabilityResult(
        devices=tuple(devices),
        group_commits=tuple(group_commits),
        checkpoints=tuple(checkpoints),
        crash_rate=DEFAULT_CRASH_RATE,
    )
    result.rows.extend(run_sweep(spec, jobs=jobs, cache=cache))
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
