"""E5 — Figure 2: B-tree node-size sensitivity on a simulated HDD.

Paper protocol (Section 7, BerkeleyDB): load 16 GB, cap RAM at 4 GiB, then
run random queries and random inserts while sweeping the node size from
4 KiB to 1 MiB.  Scaled here to ~32 MiB of data with an 8 MiB cache (same
1:4 cache ratio).

Expected shape (paper): per-op cost is flat up to the optimum (~64 KiB on
their disk), then "the insert and query costs start increasing roughly
linearly with the node size, as predicted."  The affine overlay line fits
``scale * (1 + alpha*B) / ln(B+1)``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.analysis.fitting import OverlayFit, fit_affine_overlay
from repro.experiments import report
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

DEFAULT_NODE_SIZES = (4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20)


@dataclass
class BTreeNodeSizeResult:
    """Per-node-size op times plus the affine overlay fits."""

    node_sizes: tuple[int, ...]
    n_entries: int
    cache_bytes: int
    query_ms: list[float] = field(default_factory=list)
    insert_ms: list[float] = field(default_factory=list)
    query_fit: OverlayFit | None = None
    insert_fit: OverlayFit | None = None

    def render(self) -> str:
        labels = [report.format_bytes(b) for b in self.node_sizes]
        series: dict[str, list[float]] = {
            "query (ms/op)": self.query_ms,
            "insert (ms/op)": self.insert_ms,
        }
        if self.query_fit is not None:
            series["query affine fit"] = [
                float(v) * 1e3 for v in self.query_fit.predict(list(self.node_sizes))
            ]
        note = None
        if self.query_fit is not None and self.insert_fit is not None:
            note = (
                f"Affine overlay: query alpha={self.query_fit.alpha:.3g}/byte "
                f"(RMS {self.query_fit.rms * 1e3:.2g} ms), insert "
                f"alpha={self.insert_fit.alpha:.3g}/byte "
                f"(RMS {self.insert_fit.rms * 1e3:.2g} ms)."
            )
        return report.render_series(
            f"Figure 2 (simulated): B-tree ms/op vs node size "
            f"(N={self.n_entries}, M={report.format_bytes(self.cache_bytes)})",
            "node size",
            labels,
            series,
            note=note,
        )

    def render_plot(self) -> str:
        from repro.experiments.plot import ascii_plot

        return ascii_plot(
            "Figure 2 (simulated): B-tree ms/op vs node size",
            list(self.node_sizes),
            {"query": self.query_ms, "insert": self.insert_ms},
            log_x=True,
            x_label="node bytes",
            y_label="ms/op",
        )

    @property
    def best_query_node(self) -> int:
        """Node size minimizing query time."""
        return self.node_sizes[min(range(len(self.query_ms)), key=self.query_ms.__getitem__)]

    @property
    def best_insert_node(self) -> int:
        """Node size minimizing insert time."""
        return self.node_sizes[min(range(len(self.insert_ms)), key=self.insert_ms.__getitem__)]


def sweep_spec(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 300_000,
    cache_bytes: int = 8 << 20,
    universe: int = 1 << 31,
    n_queries: int = 400,
    n_inserts: int = 400,
    warmup_queries: int = 200,
    seed: int = 0,
) -> SweepSpec:
    """The E5 sweep: one ``btree_nodesize_point`` per node size."""
    return SweepSpec.make(
        "btree_nodesize",
        [
            SweepPoint.make(
                "btree_nodesize_point",
                node_bytes=node_bytes,
                n_entries=n_entries,
                cache_bytes=cache_bytes,
                universe=universe,
                n_queries=n_queries,
                n_inserts=n_inserts,
                warmup_queries=warmup_queries,
                seed=seed,
            )
            for node_bytes in node_sizes
        ],
    )


def run(
    *,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    n_entries: int = 300_000,
    cache_bytes: int = 8 << 20,
    universe: int = 1 << 31,
    n_queries: int = 400,
    n_inserts: int = 400,
    warmup_queries: int = 200,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> BTreeNodeSizeResult:
    """Sweep node sizes over a freshly loaded B-tree on the default HDD."""
    spec = sweep_spec(
        node_sizes=tuple(node_sizes),
        n_entries=n_entries,
        cache_bytes=cache_bytes,
        universe=universe,
        n_queries=n_queries,
        n_inserts=n_inserts,
        warmup_queries=warmup_queries,
        seed=seed,
    )
    result = BTreeNodeSizeResult(
        node_sizes=tuple(node_sizes), n_entries=n_entries, cache_bytes=cache_bytes
    )
    for point in run_sweep(spec, jobs=jobs, cache=cache):
        result.query_ms.append(point["query_ms"])
        result.insert_ms.append(point["insert_ms"])
    result.query_fit = fit_affine_overlay(
        list(node_sizes), [v / 1e3 for v in result.query_ms], kind="btree"
    )
    result.insert_fit = fit_affine_overlay(
        list(node_sizes), [v / 1e3 for v in result.insert_ms], kind="btree"
    )
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
