"""Command-line entry: ``python -m repro.experiments <experiment|all>``."""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro.experiments import (
    exp_affine_validation,
    exp_aging,
    exp_asymmetry,
    exp_autotune,
    exp_betree_nodesize,
    exp_btree_nodesize,
    exp_cob_compare,
    exp_durability,
    exp_epsilon_tradeoff,
    exp_lsm_nodesize,
    exp_model_error,
    exp_optima,
    exp_optimizations,
    exp_pdam_concurrency,
    exp_pdam_validation,
    exp_sensitivity,
    exp_serve_tail,
    exp_tail_resilience,
    exp_write_amp,
    exp_ycsb,
)

EXPERIMENTS: dict[str, Callable[[], object]] = {
    "fig1": exp_pdam_validation.run,      # also produces table1
    "table2": exp_affine_validation.run,
    "table3": exp_sensitivity.run,
    "fig2": exp_btree_nodesize.run,
    "fig3": exp_betree_nodesize.run,
    "lemma13": exp_pdam_concurrency.run,
    "writeamp": exp_write_amp.run,
    "theorem9": exp_optimizations.run,
    "optima": exp_optima.run,
    "lsm": exp_lsm_nodesize.run,
    "epsilon": exp_epsilon_tradeoff.run,
    "aging": exp_aging.run,
    "asymmetry": exp_asymmetry.run,
    "ycsb": exp_ycsb.run,
    "modelerr": exp_model_error.run,
    "autotune": exp_autotune.run,
    "tailres": exp_tail_resilience.run,
    "serve": exp_serve_tail.run,
    "cob": exp_cob_compare.run,
    "durability": exp_durability.run,
}

#: Experiments migrated to repro.runner: these accept ``jobs=``/``cache=``.
RUNNER_EXPERIMENTS = frozenset(
    {"table2", "fig2", "fig3", "autotune", "tailres", "serve", "cob", "durability"}
)

#: Experiments that understand the fault flags (--faults/--policy/--quick).
FAULT_EXPERIMENTS = frozenset({"tailres", "serve"})

#: Runner experiments with a CI-smoke ``quick=`` switch (no fault flags).
QUICK_EXPERIMENTS = frozenset({"cob", "durability"})


def _run_one(
    name: str,
    *,
    jobs: int,
    use_cache: bool,
    faults: str | None = None,
    policy: str | None = None,
    quick: bool = False,
) -> object:
    """Invoke one experiment, routing runner/fault kwargs where supported."""
    fn = EXPERIMENTS[name]
    if name not in RUNNER_EXPERIMENTS:
        return fn()
    from repro.runner import ResultCache, default_cache_dir

    cache = ResultCache(default_cache_dir()) if use_cache else None
    kwargs: dict[str, object] = {"jobs": jobs, "cache": cache}
    if name in QUICK_EXPERIMENTS:
        kwargs["quick"] = quick
    if name in FAULT_EXPERIMENTS:
        if faults is not None:
            from repro.faults import FaultPlan

            kwargs["plan"] = FaultPlan.from_file(faults)
        if policy is not None:
            kwargs["policies"] = (policy,)
        kwargs["quick"] = quick
    return fn(**kwargs)


def main(argv: list[str] | None = None) -> int:
    """Run one or all experiments; prints rendered tables to stdout."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's tables and figures on simulated hardware.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        choices=sorted(EXPERIMENTS) + ["all"],
        help="which table/figure to regenerate",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="append an ASCII plot for experiments that have one",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="print the available experiment names and exit",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for runner-based experiments "
        "(0 = all cores; results are identical at any job count)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep point, ignoring the on-disk result cache",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN.json",
        default=None,
        help="fault plan for fault-aware experiments (schema: docs/faults.md); "
        "default is the experiment's built-in plan",
    )
    parser.add_argument(
        "--policy",
        choices=["none", "retry", "hedge", "admit", "admit+hedge"],
        default=None,
        help="restrict fault-aware experiments to one resilience policy "
        "(default: sweep the experiment's own set; 'admit' variants are "
        "serve-only, 'retry' is device-level)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink fault-aware and quick-capable experiments to CI-smoke size",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the top-20 cumulative entries",
    )
    parser.add_argument(
        "--metrics",
        action="store_true",
        help="enable repro.obs and print a per-experiment metrics block "
        "(simulated results are unchanged; see docs/observability.md)",
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="write structured spans as JSONL to PATH (implies --metrics; "
        "with multiple experiments, '.<name>' is appended per experiment)",
    )
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(EXPERIMENTS):
            print(name)
        return 0
    if args.experiment is None:
        parser.error("experiment name required (or --list)")
    names = sorted(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    metrics_on = args.metrics or args.trace_out is not None
    if metrics_on:
        from repro import obs
        from repro.experiments.report import render_metrics

        obs.enable(trace=args.trace_out is not None)
    for name in names:
        if metrics_on:
            obs.reset()  # each experiment gets its own metrics block
        t0 = time.perf_counter()
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            result = profiler.runcall(
                _run_one,
                name,
                jobs=args.jobs,
                use_cache=not args.no_cache,
                faults=args.faults,
                policy=args.policy,
                quick=args.quick,
            )
            stats = pstats.Stats(profiler, stream=sys.stdout)
            stats.sort_stats(pstats.SortKey.CUMULATIVE).print_stats(20)
        else:
            result = _run_one(
                name,
                jobs=args.jobs,
                use_cache=not args.no_cache,
                faults=args.faults,
                policy=args.policy,
                quick=args.quick,
            )
        wall = time.perf_counter() - t0
        print(result.render())
        if args.plot and hasattr(result, "render_plot"):
            print()
            print(result.render_plot())
        if metrics_on:
            print()
            print(render_metrics(obs.OBS.snapshot(), title=f"{name} metrics"))
            if args.trace_out is not None:
                tracer = obs.OBS.tracer
                assert tracer is not None
                path = (
                    args.trace_out
                    if len(names) == 1
                    else f"{args.trace_out}.{name}"
                )
                tracer.export_jsonl(path)
                print(f"[trace: {len(tracer)} spans -> {path}]")
        print(f"\n[{name}: {wall:.1f}s wall]\n")
    if metrics_on:
        obs.disable(detach_tracer=True)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
