"""E18 — tail latency and throughput under injected faults (repro.faults).

The paper's refined models price *time*; real devices also *misbehave* —
latency spikes, transient errors, stalled flash channels.  This
experiment asks whether the model-driven resilience moves survive
contact with a faulty device:

* **Trees on a faulty HDD** — B-tree and Bε-tree point queries under a
  fault plan swept across intensities, once per policy
  (``none``/``retry``/``hedge``).  The interesting number is the
  p99-vs-mean gap: heavy-tailed spikes barely move the mean but blow up
  the tail, and hedging converts the tail to a min-of-two draw.
* **PDAM channel stalls** — a :class:`ReadAheadScheduler` driving ``k``
  closed-loop clients on a ``P``-way PDAM device whose channels stall at
  random.  A hedging policy spends the ``P - k`` spare slots per step on
  duplicates of stalled demands — the same unused-slot budget read-ahead
  uses (PAPER.md Definition 1: unused slots are wasted anyway) — and
  should recover most of the fault-free throughput.

Both parts draw every fault from the plan's own seeded RNG stream, so
``intensity=0`` (or ``--policy none`` on a zero plan) reproduces the
fault-free numbers exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, TransientIOError
from repro.experiments import report
from repro.faults import FaultPlan, FaultyDevice, ResiliencePolicy
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

DEFAULT_INTENSITIES = (0.0, 0.5, 1.0)
DEFAULT_POLICIES = ("none", "retry", "hedge")
DEFAULT_TREES = ("btree", "betree")

#: The stock E18 fault plan (overridable via ``--faults PLAN.json``):
#: 4% of IOs spike by >= 25ms with a heavy Pareto tail, 1% fail
#: transiently, and 6% of PDAM channels stall per step for up to 6 steps.
DEFAULT_PLAN = FaultPlan(
    seed=1307,
    spike_prob=0.04,
    spike_seconds=25e-3,
    spike_alpha=1.2,
    error_prob=0.01,
    stall_prob=0.06,
    stall_steps=6,
)

#: Hedge deadline for the HDD trees: ~2x a typical random read, so only
#: genuinely spiked IOs hedge.
TREE_HEDGE_DEADLINE = 30e-3


def policy_for(name: str, *, hedge_deadline_seconds: float) -> ResiliencePolicy:
    """The stock policy behind one ``--policy`` spelling."""
    if name == "none":
        return ResiliencePolicy.none()
    if name == "retry":
        return ResiliencePolicy.retry()
    if name == "hedge":
        return ResiliencePolicy.hedged(hedge_deadline_seconds)
    raise ConfigurationError(f"unknown policy {name!r}; expected one of "
                             f"{DEFAULT_POLICIES}")


# -- kernel bodies (called via repro.runner.kernels) -------------------------


def measure_tree(
    tree: str,
    *,
    plan_json: str,
    intensity: float,
    policy: str,
    n_entries: int,
    cache_bytes: int,
    universe: int,
    n_queries: int,
    warmup_queries: int,
    seed: int,
) -> dict[str, Any]:
    """Per-query latency distribution of one tree under one (plan, policy).

    The tree is loaded against a *zero* plan (loading through injected
    write errors under ``--policy none`` would abort the build, which is
    not the phenomenon under study), then the scaled plan is armed for
    warm-up and measurement.  Queries that exhaust the retry budget count
    as ``failed`` and are excluded from the latency percentiles.
    """
    from repro.experiments.common import build_load
    from repro.experiments.devices import default_hdd
    from repro.storage.stack import StorageStack
    from repro.workloads.generators import point_query_stream

    base = FaultPlan.from_json(plan_json)
    armed = base.scaled(intensity)
    pol = policy_for(policy, hedge_deadline_seconds=TREE_HEDGE_DEADLINE)

    pairs, keys = build_load(n_entries, universe, seed=seed)
    device = FaultyDevice(default_hdd(seed=seed), FaultPlan(seed=base.seed), policy=pol)
    storage = StorageStack(device, cache_bytes)
    if tree == "btree":
        from repro.trees.btree import BTree, BTreeConfig

        t = BTree(storage, BTreeConfig())
    elif tree == "betree":
        from repro.trees.betree import BeTreeConfig, OptimizedBeTree

        t = OptimizedBeTree(storage, BeTreeConfig())
    else:
        raise ConfigurationError(f"unknown tree {tree!r}; expected one of {DEFAULT_TREES}")
    t.bulk_load(pairs)
    storage.drop_cache()
    device.plan = armed  # faults apply to warm-up and measurement only

    for key in point_query_stream(keys, warmup_queries, seed=seed + 1):
        try:
            t.get(key)
        except TransientIOError:
            pass
    storage.cache.stats.reset()

    latencies: list[float] = []
    failed = 0
    for key in point_query_stream(keys, n_queries, seed=seed + 2):
        t0 = storage.io_seconds
        try:
            t.get(key)
        except TransientIOError:
            failed += 1
            continue
        latencies.append(storage.io_seconds - t0)

    arr = np.asarray(latencies) if latencies else np.zeros(1)
    fs = device.fault_stats
    return {
        "tree": tree,
        "intensity": intensity,
        "policy": policy,
        "mean_ms": float(arr.mean()) * 1e3,
        "p50_ms": float(np.percentile(arr, 50)) * 1e3,
        "p99_ms": float(np.percentile(arr, 99)) * 1e3,
        "max_ms": float(arr.max()) * 1e3,
        "failed": failed,
        "retries": fs.retries,
        "hedges_issued": fs.hedges_issued,
        "hedge_wins": fs.hedge_wins,
    }


def measure_pdam(
    *,
    plan_json: str,
    intensity: float,
    policy: str,
    parallelism: int,
    clients: int,
    n_rounds: int,
    seed: int,
) -> dict[str, Any]:
    """Closed-loop PDAM throughput under channel stalls, one (plan, policy).

    ``clients`` clients each demand one random block per step; with
    ``clients < parallelism`` the spare slots are the hedging budget.
    Fault-free this costs exactly one step per round, so throughput is
    ``clients`` demands/step and ``recovered`` is 1.0 by construction.
    """
    from repro.models.pdam import PDAMModel
    from repro.storage.ideal import PDAMDevice
    from repro.storage.scheduler import ReadAheadScheduler

    if not 0 < clients <= parallelism:
        raise ConfigurationError(
            f"need 0 < clients <= parallelism, got {clients} vs {parallelism}"
        )
    base = FaultPlan.from_json(plan_json)
    armed = base.scaled(intensity)
    model = PDAMModel(parallelism, 4096, step_seconds=1e-3)
    device = PDAMDevice(model, capacity_bytes=1 << 30)
    pol = policy_for(policy, hedge_deadline_seconds=1.5 * model.step_seconds)
    sched = ReadAheadScheduler(
        device, expand_readahead=False, fault_plan=armed, policy=pol
    )
    rng = np.random.default_rng(seed + 11)
    max_block = device.capacity_bytes // model.block_bytes
    for _ in range(n_rounds):
        blocks = rng.integers(0, max_block, size=clients)
        for c in range(clients):
            sched.submit(c, int(blocks[c]))
        sched.step()
    demands = n_rounds * clients
    throughput = demands / device.steps_elapsed  # demands per PDAM step
    fs = sched.fault_stats
    return {
        "intensity": intensity,
        "policy": policy,
        "throughput": throughput,
        "recovered": throughput / clients,
        "stalls": fs.stalls_injected,
        "hedges_issued": fs.hedges_issued,
        "hedge_wins": fs.hedge_wins,
    }


# -- sweep + result ----------------------------------------------------------


@dataclass
class TailResilienceResult:
    """Latency rows (trees on a faulty HDD) + throughput rows (PDAM stalls)."""

    intensities: tuple[float, ...]
    policies: tuple[str, ...]
    trees: tuple[str, ...]
    plan: dict[str, Any]
    tree_rows: list[dict[str, Any]] = field(default_factory=list)
    pdam_rows: list[dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        blocks = []
        if self.tree_rows:
            blocks.append(
                report.render_table(
                    "E18a: per-query latency under injected faults (simulated HDD)",
                    ["tree", "intensity", "policy", "mean ms", "p50 ms",
                     "p99 ms", "max ms", "failed", "retries", "hedge wins"],
                    [
                        [r["tree"], r["intensity"], r["policy"],
                         f"{r['mean_ms']:.2f}", f"{r['p50_ms']:.2f}",
                         f"{r['p99_ms']:.2f}", f"{r['max_ms']:.2f}",
                         r["failed"], r["retries"], r["hedge_wins"]]
                        for r in self.tree_rows
                    ],
                    note=(
                        "Heavy-tailed spikes widen the p99-vs-mean gap; 'retry' "
                        "eliminates failed ops, 'hedge' additionally caps the "
                        "tail at min-of-two draws.  intensity=0 rows are the "
                        "fault-free baseline."
                    ),
                )
            )
        if self.pdam_rows:
            blocks.append(
                report.render_table(
                    "E18b: PDAM closed-loop throughput under channel stalls",
                    ["intensity", "policy", "demands/step", "vs fault-free",
                     "stalls", "hedges", "hedge wins"],
                    [
                        [r["intensity"], r["policy"], f"{r['throughput']:.3f}",
                         f"{r['recovered']:.0%}", r["stalls"],
                         r["hedges_issued"], r["hedge_wins"]]
                        for r in self.pdam_rows
                    ],
                    note=(
                        "Hedging spends the step's spare slots (Definition 1: "
                        "wasted otherwise) on duplicates of stalled demands, "
                        "recovering most of the fault-free throughput."
                    ),
                )
            )
        return "\n\n".join(blocks)


def sweep_spec(
    *,
    plan: FaultPlan = DEFAULT_PLAN,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    trees: tuple[str, ...] = DEFAULT_TREES,
    n_entries: int = 150_000,
    cache_bytes: int = 2 << 20,
    universe: int = 1 << 31,
    n_queries: int = 400,
    warmup_queries: int = 100,
    parallelism: int = 16,
    clients: int = 8,
    n_rounds: int = 3000,
    seed: int = 0,
) -> SweepSpec:
    """The E18 sweep: (tree x intensity x policy) + (intensity x policy)."""
    plan_json = plan.to_json()
    points = [
        SweepPoint.make(
            "tail_resilience_tree",
            tree=tree,
            plan_json=plan_json,
            intensity=float(intensity),
            policy=policy,
            n_entries=n_entries,
            cache_bytes=cache_bytes,
            universe=universe,
            n_queries=n_queries,
            warmup_queries=warmup_queries,
            seed=seed,
        )
        for tree in trees
        for intensity in intensities
        for policy in policies
    ]
    points += [
        SweepPoint.make(
            "tail_resilience_pdam",
            plan_json=plan_json,
            intensity=float(intensity),
            policy=policy,
            parallelism=parallelism,
            clients=clients,
            n_rounds=n_rounds,
            seed=seed,
        )
        for intensity in intensities
        for policy in policies
    ]
    return SweepSpec.make("tail_resilience", points)


def run(
    *,
    plan: FaultPlan | None = None,
    intensities: tuple[float, ...] = DEFAULT_INTENSITIES,
    policies: tuple[str, ...] = DEFAULT_POLICIES,
    trees: tuple[str, ...] = DEFAULT_TREES,
    quick: bool = False,
    seed: int = 0,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> TailResilienceResult:
    """Sweep fault intensity x policy over trees and the PDAM scheduler.

    ``quick`` shrinks every dimension to CI-smoke size (same code paths,
    ~seconds of wall clock).
    """
    plan = plan if plan is not None else DEFAULT_PLAN
    sizes: dict[str, Any] = {}
    if quick:
        sizes = dict(
            n_entries=30_000,
            cache_bytes=512 << 10,
            n_queries=120,
            warmup_queries=40,
            n_rounds=600,
        )
    spec = sweep_spec(
        plan=plan,
        intensities=tuple(intensities),
        policies=tuple(policies),
        trees=tuple(trees),
        seed=seed,
        **sizes,
    )
    result = TailResilienceResult(
        intensities=tuple(intensities),
        policies=tuple(policies),
        trees=tuple(trees),
        plan=plan.describe(),
    )
    for row in run_sweep(spec, jobs=jobs, cache=cache):
        if "tree" in row:
            result.tree_rows.append(row)
        else:
            result.pdam_rows.append(row)
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
