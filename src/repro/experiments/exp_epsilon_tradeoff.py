"""E12 (extension) — the insert/query tradeoff across the WOD design space.

Section 6 of the paper frames the Bε-tree's tuning knob:

    "Setting ε = 1 optimizes for point queries and the Bε-tree reduces to
    a B-tree.  Setting ε = 0 optimizes for insertions/deletions, and the
    Bε-tree reduce to a buffered repository tree. ... In the DAM model, a
    Bε-tree (for 0 < ε < 1) performs inserts a factor of εB^{1-ε} faster
    than a B-tree, but point queries run a factor of 1/ε times slower."

This experiment traces that tradeoff curve *empirically* on the simulated
HDD: one Bε-tree per fanout from 2 (≈ buffered repository tree) up to the
node's pivot capacity (= B-tree), measuring amortized insert cost and
point-query cost.  A B-tree, an LSM-tree, and a COLA are placed on the
same axes for reference — the three write-optimized families the paper's
introduction names.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.common import build_load
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTreeConfig, OptimizedBeTree
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.cola import COLA, COLAConfig
from repro.trees.lsm import LSMConfig, LSMTree
from repro.workloads.generators import insert_stream, point_query_stream


@dataclass
class TradeoffPoint:
    """One structure's (insert, query) cost pair."""

    label: str
    insert_ms: float
    query_ms: float


@dataclass
class EpsilonTradeoffResult:
    """The measured tradeoff curve."""

    node_bytes: int
    n_entries: int
    cache_bytes: int
    points: list[TradeoffPoint] = field(default_factory=list)

    def render(self) -> str:
        rows = [
            [p.label, f"{p.insert_ms:.4f}", f"{p.query_ms:.3f}"]
            for p in self.points
        ]
        return report.render_table(
            f"Insert/query tradeoff across the WOD space "
            f"(B={report.format_bytes(self.node_bytes)}, N={self.n_entries}, "
            f"M={report.format_bytes(self.cache_bytes)})",
            ["structure", "insert (ms/op)", "query (ms/op)"],
            rows,
            note=(
                "Bε fanout sweeps ε from ~0 (buffered repository tree) to "
                "~1 (B-tree): inserts get costlier, queries cheaper — the "
                "Brodal-Fagerberg tradeoff the paper's Section 6 discusses."
            ),
        )

    def betree_points(self) -> list[TradeoffPoint]:
        """Just the Bε-tree fanout sweep, in fanout order."""
        return [p for p in self.points if p.label.startswith("betree")]


def _measure(tree, storage, keys, universe, n_queries, n_inserts, seed):
    storage.drop_cache()
    for k in point_query_stream(keys, 100, seed=seed + 1):
        tree.get(k)
    t0 = storage.io_seconds
    for k in point_query_stream(keys, n_queries, seed=seed + 2):
        tree.get(k)
    query = (storage.io_seconds - t0) / n_queries
    t0 = storage.io_seconds
    for k, v in insert_stream(universe, n_inserts, seed=seed + 3):
        tree.insert(k, v)
    storage.flush()
    insert = (storage.io_seconds - t0) / n_inserts
    return insert * 1e3, query * 1e3


def run(
    *,
    node_bytes: int = 256 << 10,
    fanouts: tuple[int, ...] = (2, 4, 16, 64, 256),
    n_entries: int = 150_000,
    cache_bytes: int = 4 << 20,
    universe: int = 1 << 31,
    n_queries: int = 200,
    seed: int = 0,
) -> EpsilonTradeoffResult:
    """Measure the tradeoff curve plus the three reference structures."""
    pairs, keys = build_load(n_entries, universe, seed=seed)
    result = EpsilonTradeoffResult(
        node_bytes=node_bytes, n_entries=n_entries, cache_bytes=cache_bytes
    )

    for fanout in fanouts:
        device = default_hdd(seed=seed)
        storage = StorageStack(device, cache_bytes)
        config = BeTreeConfig(node_bytes=node_bytes, fanout=fanout)
        tree = OptimizedBeTree(storage, config)
        tree.bulk_load(pairs)
        buffer_msgs = max(1, config.buffer_budget_bytes // config.fmt.message_bytes)
        for k, v in insert_stream(universe, buffer_msgs, seed=seed + 7):
            tree.insert(k, v)
        n_inserts = min(40_000, max(4000, 3 * buffer_msgs))
        ins, qry = _measure(tree, storage, keys, universe, n_queries, n_inserts, seed)
        result.points.append(TradeoffPoint(f"betree F={fanout}", ins, qry))

    # B-tree reference (ε = 1 endpoint, at its own favourable node size).
    device = default_hdd(seed=seed)
    storage = StorageStack(device, cache_bytes)
    btree = BTree(storage, BTreeConfig(node_bytes=64 << 10))
    btree.bulk_load(pairs)
    ins, qry = _measure(btree, storage, keys, universe, n_queries, 1000, seed)
    result.points.append(TradeoffPoint("btree 64KiB", ins, qry))

    # LSM reference.
    device = default_hdd(seed=seed)
    lsm = LSMTree(device, LSMConfig(l0_trigger=2))
    for k, v in pairs:
        lsm.insert(k, v)
    lsm.flush_memtable()
    t0 = device.stats.busy_seconds
    for k in point_query_stream(keys, n_queries, seed=seed + 2):
        lsm.get(k)
    lsm_q = (device.stats.busy_seconds - t0) * 1e3 / n_queries
    n_ins = 40_000
    t0 = device.stats.busy_seconds
    for k, v in insert_stream(universe, n_ins, seed=seed + 3):
        lsm.insert(k, v)
    lsm.flush_memtable()
    lsm_i = (device.stats.busy_seconds - t0) * 1e3 / n_ins
    result.points.append(TradeoffPoint("lsm 2MiB", lsm_i, lsm_q))

    # COLA reference (no node-size knob at all).
    device = default_hdd(seed=seed)
    cola = COLA(device, COLAConfig(ram_bytes=cache_bytes))
    for k, v in pairs:
        cola.insert(k, v)
    t0 = device.stats.busy_seconds
    for k in point_query_stream(keys, n_queries, seed=seed + 2):
        cola.get(k)
    cola_q = (device.stats.busy_seconds - t0) * 1e3 / n_queries
    t0 = device.stats.busy_seconds
    for k, v in insert_stream(universe, n_ins, seed=seed + 3):
        cola.insert(k, v)
    cola_i = (device.stats.busy_seconds - t0) * 1e3 / n_ins
    result.points.append(TradeoffPoint("cola", cola_i, cola_q))

    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
