"""E9 — Theorem 9 ablation: where does the optimized query cost come from?

Four configurations of the same Bε-tree, measured on the same workload:

1. ``naive``      — Lemma 8 tree, whole-node IOs: per level ``1 + alpha*B``.
2. ``segments``   — per-child segments and basement chunks, but each node's
   pivots still live in the node: per level *two* IOs,
   ``2 + alpha*(B/F + F)``.
3. ``theorem9``   — segments + pivots-in-parent: per level *one* IO,
   ``1 + alpha*(B/F + F)``.

The paper's claim: the DAM cannot see any of this (all variants do the
same number of node visits), but in the affine model the optimization is
asymptotic — it is what lets Corollary 12's tree match B-tree queries.
Insert costs should be roughly unchanged across variants (flushes move
whole nodes regardless).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.common import build_load, measure_tree_ops
from repro.experiments.devices import default_hdd
from repro.storage.stack import StorageStack
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.workloads.generators import insert_stream

VARIANTS = ("naive", "segments", "theorem9")


@dataclass
class Theorem9AblationResult:
    """Per-variant query and insert times."""

    node_bytes: int
    fanout: int
    n_entries: int
    cache_bytes: int
    query_ms: dict[str, float] = field(default_factory=dict)
    insert_ms: dict[str, float] = field(default_factory=dict)

    def render(self) -> str:
        rows = [
            [v, f"{self.query_ms[v]:.3f}", f"{self.insert_ms[v]:.4f}"]
            for v in VARIANTS
        ]
        return report.render_table(
            f"Theorem 9 ablation (B={report.format_bytes(self.node_bytes)}, "
            f"F={self.fanout}, N={self.n_entries}, "
            f"M={report.format_bytes(self.cache_bytes)})",
            ["variant", "query (ms/op)", "insert (ms/op)"],
            rows,
            note=(
                "naive reads 1+aB per level; segments reads 2+a(B/F+F); "
                "theorem9 reads 1+a(B/F+F).  Inserts move whole nodes in "
                "every variant, so they should be comparable."
            ),
        )

    @property
    def query_speedup(self) -> float:
        """Query speedup of the full Theorem 9 tree over the naive tree."""
        return self.query_ms["naive"] / self.query_ms["theorem9"]


def _build(variant: str, storage: StorageStack, config: BeTreeConfig):
    if variant == "naive":
        return BeTree(storage, config)
    if variant == "segments":
        return OptimizedBeTree(storage, config, segmented_io=True, pivots_in_parent=False)
    if variant == "theorem9":
        return OptimizedBeTree(storage, config, segmented_io=True, pivots_in_parent=True)
    raise ValueError(f"unknown variant {variant!r}")


def run(
    *,
    node_bytes: int = 1 << 20,
    fanout: int = 16,
    n_entries: int = 200_000,
    cache_bytes: int = 64 << 10,
    universe: int = 1 << 31,
    n_queries: int = 300,
    n_inserts: int = 30_000,
    seed: int = 0,
) -> Theorem9AblationResult:
    """Measure all variants on identical workloads.

    The cache is deliberately tiny (64 KiB default): Theorem 9's advantage
    is about per-level *IO counts and sizes* in the uncached regime, and a
    warm cache would hide the second (pivot-area) IO of the ``segments``
    variant — real pivot arrays are small and hot.  The root buffer is
    pre-filled before measuring so the lazy naive tree cannot defer its
    flush work past the measurement window.
    """
    pairs, keys = build_load(n_entries, universe, seed=seed)
    result = Theorem9AblationResult(
        node_bytes=node_bytes, fanout=fanout, n_entries=n_entries, cache_bytes=cache_bytes
    )
    config = BeTreeConfig(node_bytes=node_bytes, fanout=fanout)
    buffer_msgs = config.buffer_budget_bytes // config.fmt.message_bytes
    for variant in VARIANTS:
        device = default_hdd(seed=seed)
        storage = StorageStack(device, cache_bytes)
        tree = _build(variant, storage, config)
        tree.bulk_load(pairs)
        for key, value in insert_stream(universe, buffer_msgs, seed=seed + 7):
            tree.insert(key, value)
        times = measure_tree_ops(
            tree, keys, universe, n_queries=n_queries, n_inserts=n_inserts, seed=seed
        )
        result.query_ms[variant] = times.query_seconds_per_op * 1e3
        result.insert_ms[variant] = times.insert_seconds_per_op * 1e3
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
