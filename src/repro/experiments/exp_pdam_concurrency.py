"""E7 — Section 8 / Lemma 13: PDAM-adaptive B-tree layouts.

Compares three node layouts under ``k`` concurrent query clients on a
PDAM device (Section 8's design dilemma):

* ``flat_b``  — nodes of size ``B``: optimal throughput at ``k >= P``
  (every client advances one level per step) but wastes ``P - 1`` slots
  when ``k = 1``.
* ``flat_pb`` — nodes of size ``PB`` read in full: optimal at ``k = 1``
  (read-ahead fills all slots) but each query still moves ``P`` blocks
  per level, so throughput does not scale with ``k``.
* ``veb_pb``  — nodes of size ``PB`` in a van Emde Boas layout: each
  client consumes any read-ahead prefix usefully, giving Lemma 13's
  ``Omega(k / log_{PB/k} N)`` at *every* ``k <= P`` simultaneously.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.experiments import report
from repro.models.pdam import PDAMModel
from repro.storage.ideal import PDAMDevice
from repro.trees.btree.veb import PDAMQuerySimulator, StaticSearchTree

DEFAULT_CLIENTS = (1, 2, 4, 8, 16, 32)
MODES = ("flat_b", "flat_pb", "veb_pb")


@dataclass
class PDAMConcurrencyResult:
    """Throughput (queries per time step) per layout and client count."""

    parallelism: int
    block_bytes: int
    n_keys: int
    clients: tuple[int, ...]
    throughput: dict[str, list[float]] = field(default_factory=dict)

    def render(self) -> str:
        return report.render_series(
            f"Lemma 13 (simulated): query throughput vs concurrency "
            f"(P={self.parallelism}, B={report.format_bytes(self.block_bytes)}, "
            f"N={self.n_keys})",
            "k clients",
            list(self.clients),
            {mode: self.throughput[mode] for mode in MODES if mode in self.throughput},
            note=(
                "Throughput in queries per PDAM time step.  flat_b wins at "
                "k>=P, flat_pb at k=1; veb_pb matches or beats both at every "
                "k — the Lemma 13 guarantee."
            ),
        )

    def render_plot(self) -> str:
        from repro.experiments.plot import ascii_plot

        return ascii_plot(
            "Lemma 13 (simulated): throughput vs concurrency",
            list(self.clients),
            dict(self.throughput),
            log_x=True,
            x_label="k clients",
            y_label="queries/step",
        )

    def veb_dominates(self, slack: float = 0.85) -> bool:
        """Whether veb_pb is within ``slack`` of the best mode at every k."""
        for i in range(len(self.clients)):
            best = max(self.throughput[m][i] for m in self.throughput)
            if self.throughput["veb_pb"][i] < slack * best:
                return False
        return True


def run(
    *,
    parallelism: int = 8,
    block_bytes: int = 4096,
    n_keys: int = 1 << 16,
    clients: tuple[int, ...] = DEFAULT_CLIENTS,
    queries_per_client: int = 50,
    seed: int = 0,
) -> PDAMConcurrencyResult:
    """Run the three layouts across the client sweep."""
    keys = np.arange(1, n_keys + 1, dtype=np.int64) * 3
    tree = StaticSearchTree(keys)
    result = PDAMConcurrencyResult(
        parallelism=parallelism,
        block_bytes=block_bytes,
        n_keys=n_keys,
        clients=tuple(clients),
    )
    for mode in MODES:
        series = []
        for k in clients:
            device = PDAMDevice(PDAMModel(parallelism=parallelism, block_bytes=block_bytes))
            sim = PDAMQuerySimulator(device, tree, mode=mode)
            out = sim.run(k, queries_per_client, seed=seed)
            series.append(out.throughput)
        result.throughput[mode] = series
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
