"""E11 (extension) — LSM-tree SSTable-size sensitivity.

The paper's introduction asks why "LevelDB's LSM-tree uses 2 MiB SSTables
for all workloads" — the same node-size question Figures 2-3 answer for
B-trees and Bε-trees, asked of the third write-optimized family.

This experiment sweeps the SSTable size on the default simulated HDD and
measures amortized insert cost (including compaction IO) and point-query
cost.  Expected affine-model shape: like the Bε-tree, the LSM is a
write-optimized structure whose insert cost falls with run size (fewer,
larger compaction IOs amortize the setup cost) while query cost is fairly
flat (queries probe one ~4 KiB block per level regardless of run size) —
i.e. LSMs are *insensitive* to the SSTable size over a wide range, which
is consistent with LevelDB shipping one default for all workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments import report
from repro.experiments.devices import default_hdd
from repro.trees.lsm import LSMConfig, LSMTree
from repro.workloads.generators import insert_stream, point_query_stream, random_load_pairs

DEFAULT_SSTABLE_SIZES = (256 << 10, 512 << 10, 1 << 20, 2 << 20, 4 << 20)


@dataclass
class LSMNodeSizeResult:
    """Per-SSTable-size op costs."""

    sstable_sizes: tuple[int, ...]
    n_loaded: int
    n_inserts: list[int] = field(default_factory=list)
    query_ms: list[float] = field(default_factory=list)
    insert_ms: list[float] = field(default_factory=list)
    write_amp: list[float] = field(default_factory=list)

    def render(self) -> str:
        labels = [report.format_bytes(b) for b in self.sstable_sizes]
        return report.render_series(
            f"LSM-tree ms/op vs SSTable size (N={self.n_loaded}, "
            f"{min(self.n_inserts)}-{max(self.n_inserts)} measured inserts)",
            "sstable size",
            labels,
            {
                "query (ms/op)": self.query_ms,
                "insert (ms/op)": self.insert_ms,
                "write amp": self.write_amp,
            },
            note=(
                "Insert cost includes compaction IO (amortized).  Like the "
                "Bε-tree, the LSM is insensitive to its run size over a wide "
                "range — consistent with LevelDB's one-default-fits-all 2 MiB."
            ),
        )


def run(
    *,
    sstable_sizes: tuple[int, ...] = DEFAULT_SSTABLE_SIZES,
    n_loaded: int = 120_000,
    min_inserts: int = 30_000,
    max_inserts: int = 150_000,
    n_queries: int = 300,
    universe: int = 1 << 31,
    seed: int = 0,
) -> LSMNodeSizeResult:
    """Sweep SSTable sizes; load by insertion (LSMs have no bulk load).

    The measured insert window scales with the run size so that at least a
    couple of memtable-flush + L0-compaction cycles land inside it —
    otherwise large-run configs report a misleadingly compaction-free cost.
    """
    pairs = random_load_pairs(n_loaded, universe, seed=seed)
    keys = [k for k, _ in pairs]
    result = LSMNodeSizeResult(sstable_sizes=tuple(sstable_sizes), n_loaded=n_loaded)
    for sstable_bytes in sstable_sizes:
        device = default_hdd(seed=seed)
        config = LSMConfig(
            sstable_bytes=sstable_bytes,
            memtable_bytes=sstable_bytes,
            level1_bytes=max(4 * sstable_bytes, 8 << 20),
            l0_trigger=2,
        )
        n_inserts = min(
            max_inserts,
            max(min_inserts, int(2.5 * config.l0_trigger * config.entries_per_sstable)),
        )
        result.n_inserts.append(n_inserts)
        tree = LSMTree(device, config)
        for k, v in pairs:
            tree.insert(k, v)
        tree.flush_memtable()

        t0 = device.stats.busy_seconds
        for key in point_query_stream(keys, n_queries, seed=seed + 2):
            tree.get(key)
        result.query_ms.append((device.stats.busy_seconds - t0) * 1e3 / n_queries)

        base = device.stats.snapshot()
        for key, value in insert_stream(universe, n_inserts, seed=seed + 3):
            tree.insert(key, value)
        tree.flush_memtable()
        delta = device.stats.delta(base)
        result.insert_ms.append(delta.busy_seconds * 1e3 / n_inserts)
        result.write_amp.append(
            delta.write_amplification(n_inserts * config.fmt.entry_bytes)
        )
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
