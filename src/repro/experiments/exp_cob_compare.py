"""E20 — the cache-oblivious tier vs the knobbed trees, across cost models.

The paper's second half claims the refined models don't just *penalize*
DAM-tuned designs — they *enable* better ones.  This experiment puts the
new :mod:`repro.trees.cob` tier (PMA + vEB index; Lemma 13's layout made
dynamic, plus the Theorem 9 buffered variant) on the same axes as the
knobbed trees, under devices that realize each cost model exactly:

* **dam** — a ``P=1`` PDAM device: every ``B``-block transfer costs one
  step, the classic DAM.
* **affine** — ``s + t·x`` per IO (paper Section 4).
* **pdam** — ``P`` parallel block slots per step (paper Definition 1).

Panel 1 sweeps the B-tree/Bε-tree node-size knob under each model.  The
knobbed trees' optima *move* with the model (DAM says tiny nodes, affine
says the half-bandwidth point, PDAM says ``~PB``) — re-tuning required.
The COLA and cob trees have no node-size knob, so one deployment serves
every column: their rows are flat by construction, and the interesting
number is how close the knob-free query/insert cost sits to the *best
tuned* knobbed tree under every model simultaneously.

Panel 2 is the Lemma 13 concurrency check on the cob tier's index
layout: ``k <= P`` closed-loop query clients over a PDAM device, with
the index stored flat in ``B``-nodes, flat in ``PB``-nodes, or in vEB
order (exactly the block packing :class:`~repro.trees.cob.tree.COBTree`
uses).  The vEB layout should match or beat both flat layouts at every
``k`` — the no-knob property in its parallel form.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.experiments import report
from repro.runner import ResultCache, SweepPoint, SweepSpec, run_sweep

MODELS = ("dam", "affine", "pdam")
KNOBBED_TREES = ("btree", "betree")
KNOBLESS_TREES = ("cola", "cob", "cob-buffered")
THREAD_MODES = ("flat_b", "flat_pb", "veb_pb")

DEFAULT_NODE_SIZES = (16 << 10, 64 << 10, 256 << 10, 1 << 20)
DEFAULT_THREADS = (1, 2, 4, 8)

#: Shared timing constants: a 5 ms setup/step and 100 MiB/s of bandwidth,
#: so the affine half-bandwidth point sits at ~512 KiB (inside the sweep)
#: and one PDAM step equals one DAM block transfer.
SETUP_SECONDS = 0.005
SECONDS_PER_BYTE = 1.0 / (100 << 20)
MODEL_BLOCK_BYTES = 4096


def make_model_device(model: str, *, parallelism: int):
    """A device whose timing *is* the named cost model."""
    if model == "affine":
        from repro.models.affine import AffineModel
        from repro.storage.ideal import AffineDevice

        return AffineDevice(
            AffineModel.from_hardware(SETUP_SECONDS, SECONDS_PER_BYTE)
        )
    if model in ("dam", "pdam"):
        from repro.models.pdam import PDAMModel
        from repro.storage.ideal import PDAMDevice

        p = 1 if model == "dam" else parallelism
        return PDAMDevice(
            PDAMModel(
                parallelism=p,
                block_bytes=MODEL_BLOCK_BYTES,
                step_seconds=SETUP_SECONDS,
            )
        )
    raise ConfigurationError(f"unknown cost model {model!r}")


def measure_point(
    *,
    tree: str,
    model: str,
    node_bytes: int,
    n_entries: int,
    universe: int,
    n_queries: int,
    n_inserts: int,
    warmup_queries: int,
    parallelism: int,
    cache_bytes: int,
    seed: int,
) -> dict[str, float]:
    """Load one tree on one model device; measure query and insert ms/op.

    A pure function of its arguments (the sweep-kernel contract): the
    ideal devices are noise-free and every stream is derived from
    ``seed`` with the same offsets as
    :func:`repro.experiments.common.measure_tree_ops`.
    """
    from repro.experiments.common import build_load
    from repro.workloads.generators import insert_stream, point_query_stream

    device = make_model_device(model, parallelism=parallelism)
    pairs, keys = build_load(n_entries, universe, seed=seed)
    instance, settle = _build_and_load(tree, device, node_bytes, cache_bytes, pairs, seed)

    for key in point_query_stream(keys, warmup_queries, seed=seed + 1):
        instance.get(key)

    t0 = device.clock
    query_keys = list(point_query_stream(keys, n_queries, seed=seed + 2))
    get_many = getattr(instance, "get_many", None)
    if get_many is not None:
        get_many(query_keys)  # accounting-identical to the loop (contract)
    else:
        for key in query_keys:
            instance.get(key)
    query_per_op = (device.clock - t0) / n_queries

    t0 = device.clock
    instance.put_many(insert_stream(universe, n_inserts, seed=seed + 3))
    settle()
    insert_per_op = (device.clock - t0) / n_inserts

    return {
        "query_ms": query_per_op * 1e3,
        "insert_ms": insert_per_op * 1e3,
    }


def _build_and_load(tree, device, node_bytes, cache_bytes, pairs, seed):
    """Build + load one tree; return (instance, settle) where ``settle``
    charges whatever the tree defers (cache write-backs) inside the
    measured insert phase."""
    from repro.trees.sizing import EntryFormat

    fmt = EntryFormat(value_bytes=20)
    if tree in ("btree", "betree"):
        from repro.storage.stack import StorageStack

        storage = StorageStack(device, cache_bytes)
        if tree == "btree":
            from repro.trees.btree import BTree, BTreeConfig

            instance = BTree(storage, BTreeConfig(node_bytes=node_bytes, fmt=fmt))
        else:
            from repro.trees.betree import BeTreeConfig, OptimizedBeTree

            instance = OptimizedBeTree(
                storage, BeTreeConfig(node_bytes=node_bytes, fanout=16, fmt=fmt)
            )
        instance.bulk_load(pairs)
        storage.drop_cache()
        return instance, storage.flush
    if tree == "cola":
        from repro.trees.cola import COLA, COLAConfig

        instance = COLA(
            device,
            COLAConfig(fmt=fmt, block_bytes=node_bytes, ram_bytes=cache_bytes),
        )
        instance.put_many(pairs)  # the COLA loads through its merge path
        return instance, lambda: None
    if tree in ("cob", "cob-buffered"):
        from repro.trees.cob import BufferedCOBTree, COBConfig, COBTree
        from repro.workloads.generators import insert_stream

        config = COBConfig(fmt=fmt, block_bytes=node_bytes, ram_bytes=cache_bytes)
        cls = COBTree if tree == "cob" else BufferedCOBTree
        instance = cls(device, config)
        instance.bulk_load(pairs)
        if tree == "cob-buffered":
            # Reach buffer steady state before measuring, the exact
            # analogue of the Bε-tree kernel's root-buffer prefill.
            capacity = (
                config.fanout * config.buffer_bytes // config.fmt.message_bytes
            )
            prefill = min(len(pairs), capacity // 2)
            universe = max(k for k, _ in pairs) + 1 if pairs else 1 << 20
            instance.put_many(insert_stream(universe, prefill, seed=seed + 7))
        return instance, lambda: None
    raise ConfigurationError(f"unknown tree {tree!r}")


@dataclass
class COBCompareResult:
    """E20: per-(model, tree) op costs plus the PDAM thread panel."""

    models: tuple[str, ...]
    node_sizes: tuple[int, ...]
    threads: tuple[int, ...]
    n_entries: int
    parallelism: int
    #: ``(model, tree) -> one value per node size`` (knobless trees hold
    #: their single measurement replicated across the axis).
    query_ms: dict[tuple[str, str], list[float]] = field(default_factory=dict)
    insert_ms: dict[tuple[str, str], list[float]] = field(default_factory=dict)
    #: ``layout mode -> queries per PDAM step`` at each thread count.
    thread_throughput: dict[str, list[float]] = field(default_factory=dict)

    # -- summary accessors (what the tests and the note assert) -----------

    def best_node(self, model: str, tree: str, series: str = "query") -> int:
        """Node size minimizing a knobbed tree's cost under ``model``."""
        values = (self.query_ms if series == "query" else self.insert_ms)[
            (model, tree)
        ]
        return self.node_sizes[min(range(len(values)), key=values.__getitem__)]

    def sensitivity(self, model: str, tree: str, series: str = "query") -> float:
        """max/min across the node-size axis (1.0 = perfectly flat)."""
        values = (self.query_ms if series == "query" else self.insert_ms)[
            (model, tree)
        ]
        return max(values) / min(values)

    def query_vs_best_tuned(self, model: str, tree: str) -> float:
        """A knobless tree's query cost over the best-tuned B-tree's."""
        best_btree = min(self.query_ms[(model, "btree")])
        return self.query_ms[(model, tree)][0] / best_btree

    def insert_vs_best_tuned_betree(self, model: str, tree: str) -> float:
        """A knobless tree's insert cost over the best-tuned Bε-tree's."""
        best = min(self.insert_ms[(model, "betree")])
        return self.insert_ms[(model, tree)][0] / best

    def veb_dominates_threads(self, slack: float = 0.85) -> bool:
        """vEB layout within ``slack`` of the best layout at every k."""
        for i in range(len(self.threads)):
            best = max(self.thread_throughput[m][i] for m in self.thread_throughput)
            if self.thread_throughput["veb_pb"][i] < slack * best:
                return False
        return True

    # -- rendering ---------------------------------------------------------

    def render(self) -> str:
        labels = [report.format_bytes(b) for b in self.node_sizes]
        blocks = []
        for model in self.models:
            series: dict[str, list[float]] = {}
            for tree in KNOBBED_TREES + KNOBLESS_TREES:
                series[f"{tree} q"] = self.query_ms[(model, tree)]
                series[f"{tree} i"] = self.insert_ms[(model, tree)]
            blocks.append(
                report.render_series(
                    f"E20 ({model}): ms/op vs node-size knob "
                    f"(N={self.n_entries}, P={self.parallelism})",
                    "node size",
                    labels,
                    series,
                    note=(
                        "q = query ms/op, i = insert ms/op.  cola/cob/"
                        "cob-buffered have no node-size knob: one deployment "
                        "serves every column (rows flat by construction)."
                    ),
                )
            )
        if self.thread_throughput:
            blocks.append(
                report.render_series(
                    f"E20 (pdam): cob index throughput vs k query threads "
                    f"(P={self.parallelism}, Lemma 13 panel)",
                    "k clients",
                    list(self.threads),
                    dict(self.thread_throughput),
                    note=(
                        "Queries per PDAM step.  veb_pb is the cob tier's "
                        "index layout; flat_b/flat_pb are the B-tuned and "
                        "PB-tuned node sizes a knobbed tree must pick from."
                    ),
                )
            )
        best = {
            model: report.format_bytes(self.best_node(model, "btree"))
            for model in self.models
        }
        blocks.append(
            "Best B-tree node size per model: "
            + ", ".join(f"{m}={b}" for m, b in best.items())
            + f"; cob query sensitivity across the axis: "
            f"{self.sensitivity('affine', 'cob'):.3g}x (no knob)."
        )
        return "\n\n".join(blocks)

    def render_plot(self) -> str:
        from repro.experiments.plot import ascii_plot

        return ascii_plot(
            "E20: query ms/op vs node-size knob (affine model)",
            list(self.node_sizes),
            {
                tree: self.query_ms[("affine", tree)]
                for tree in KNOBBED_TREES + KNOBLESS_TREES
            },
            log_x=True,
            log_y=True,
            x_label="node bytes",
            y_label="query ms/op",
        )


def sweep_spec(
    *,
    models: tuple[str, ...] = MODELS,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    n_entries: int = 120_000,
    universe: int = 1 << 30,
    n_queries: int = 300,
    n_inserts: int = 3_000,
    warmup_queries: int = 100,
    parallelism: int = 8,
    cache_bytes: int = 48 << 10,
    thread_keys: int = 1 << 15,
    queries_per_client: int = 40,
    seed: int = 0,
) -> SweepSpec:
    """The E20 sweep: compare points plus the Lemma 13 thread panel."""
    points = []
    for model in models:
        for tree in KNOBBED_TREES:
            for node_bytes in node_sizes:
                points.append(
                    SweepPoint.make(
                        "cob_compare_point",
                        tree=tree,
                        model=model,
                        node_bytes=node_bytes,
                        n_entries=n_entries,
                        universe=universe,
                        n_queries=n_queries,
                        n_inserts=n_inserts,
                        warmup_queries=warmup_queries,
                        parallelism=parallelism,
                        cache_bytes=cache_bytes,
                        seed=seed,
                    )
                )
        for tree in KNOBLESS_TREES:
            points.append(
                SweepPoint.make(
                    "cob_compare_point",
                    tree=tree,
                    model=model,
                    node_bytes=MODEL_BLOCK_BYTES,  # pricing block; no knob
                    n_entries=n_entries,
                    universe=universe,
                    n_queries=n_queries,
                    n_inserts=n_inserts,
                    warmup_queries=warmup_queries,
                    parallelism=parallelism,
                    cache_bytes=cache_bytes,
                    seed=seed,
                )
            )
    for mode in THREAD_MODES:
        for clients in threads:
            points.append(
                SweepPoint.make(
                    "cob_pdam_threads_point",
                    mode=mode,
                    clients=clients,
                    parallelism=parallelism,
                    block_bytes=MODEL_BLOCK_BYTES,
                    n_keys=thread_keys,
                    queries_per_client=queries_per_client,
                    seed=seed,
                )
            )
    return SweepSpec.make("cob_compare", points)


def run(
    *,
    models: tuple[str, ...] = MODELS,
    node_sizes: tuple[int, ...] = DEFAULT_NODE_SIZES,
    threads: tuple[int, ...] = DEFAULT_THREADS,
    n_entries: int = 120_000,
    universe: int = 1 << 30,
    n_queries: int = 300,
    n_inserts: int = 3_000,
    warmup_queries: int = 100,
    parallelism: int = 8,
    cache_bytes: int = 48 << 10,
    thread_keys: int = 1 << 15,
    queries_per_client: int = 40,
    seed: int = 0,
    quick: bool = False,
    jobs: int = 1,
    cache: ResultCache | None = None,
) -> COBCompareResult:
    """Run E20; ``quick`` shrinks it to CI-smoke size."""
    if quick:
        n_entries = min(n_entries, 12_000)
        n_inserts = min(n_inserts, 500)
        n_queries = min(n_queries, 100)
        cache_bytes = min(cache_bytes, 48 << 10)
        node_sizes = tuple(node_sizes)[:3]
        threads = tuple(t for t in threads if t <= 4) or (1,)
        thread_keys = min(thread_keys, 1 << 12)
        queries_per_client = min(queries_per_client, 10)
    spec = sweep_spec(
        models=tuple(models),
        node_sizes=tuple(node_sizes),
        threads=tuple(threads),
        n_entries=n_entries,
        universe=universe,
        n_queries=n_queries,
        n_inserts=n_inserts,
        warmup_queries=warmup_queries,
        parallelism=parallelism,
        cache_bytes=cache_bytes,
        thread_keys=thread_keys,
        queries_per_client=queries_per_client,
        seed=seed,
    )
    result = COBCompareResult(
        models=tuple(models),
        node_sizes=tuple(node_sizes),
        threads=tuple(threads),
        n_entries=n_entries,
        parallelism=parallelism,
    )
    rows: list[dict[str, Any]] = list(run_sweep(spec, jobs=jobs, cache=cache))
    i = 0
    for model in result.models:
        for tree in KNOBBED_TREES:
            q, ins = [], []
            for _ in result.node_sizes:
                q.append(rows[i]["query_ms"])
                ins.append(rows[i]["insert_ms"])
                i += 1
            result.query_ms[(model, tree)] = q
            result.insert_ms[(model, tree)] = ins
        for tree in KNOBLESS_TREES:
            row = rows[i]
            i += 1
            n = len(result.node_sizes)
            result.query_ms[(model, tree)] = [row["query_ms"]] * n
            result.insert_ms[(model, tree)] = [row["insert_ms"]] * n
    for mode in THREAD_MODES:
        series = []
        for _ in result.threads:
            series.append(rows[i]["throughput"])
            i += 1
        result.thread_throughput[mode] = series
    return result


def main() -> None:  # pragma: no cover - exercised via CLI test
    print(run().render())


if __name__ == "__main__":  # pragma: no cover
    main()
