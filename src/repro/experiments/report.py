"""ASCII rendering of experiment tables and series.

Benchmarks print their tables through these helpers so EXPERIMENTS.md and
bench output stay consistent.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.errors import ConfigurationError


def format_bytes(nbytes: float) -> str:
    """Human-readable byte size (KiB/MiB/GiB), paper-style."""
    value = float(nbytes)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if value < 1024 or unit == "TiB":
            if value == int(value):
                return f"{int(value)}{unit}"
            return f"{value:.1f}{unit}"
        value /= 1024
    raise AssertionError("unreachable")


def format_seconds(seconds: float) -> str:
    """Human-readable duration (s/ms/us)."""
    if seconds >= 1.0:
        return f"{seconds:.3g}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.3g}ms"
    return f"{seconds * 1e6:.3g}us"


def render_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Any]],
    *,
    note: str | None = None,
) -> str:
    """Render an aligned ASCII table with a title rule."""
    if not columns:
        raise ConfigurationError("need at least one column")
    str_rows = [[_cell(v) for v in row] for row in rows]
    for row in str_rows:
        if len(row) != len(columns):
            raise ConfigurationError(
                f"row width {len(row)} does not match {len(columns)} columns"
            )
    widths = [
        max(len(columns[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(columns[i])
        for i in range(len(columns))
    ]
    sep = "  "
    header = sep.join(c.ljust(widths[i]) for i, c in enumerate(columns))
    rule = "-" * len(header)
    lines = [title, "=" * len(title), header, rule]
    for row in str_rows:
        lines.append(sep.join(row[i].ljust(widths[i]) for i in range(len(columns))))
    if note:
        lines.append("")
        lines.append(note)
    return "\n".join(lines)


def render_series(
    title: str,
    x_label: str,
    xs: Sequence[Any],
    series: dict[str, Sequence[float]],
    *,
    note: str | None = None,
    fmt: str = "{:.4g}",
) -> str:
    """Render a figure as a table of x vs one column per series."""
    if not series:
        raise ConfigurationError("need at least one series")
    for name, ys in series.items():
        if len(ys) != len(xs):
            raise ConfigurationError(f"series {name!r} length does not match x")
    columns = [x_label] + list(series)
    rows = [
        [x] + [fmt.format(series[name][i]) for name in series]
        for i, x in enumerate(xs)
    ]
    return render_table(title, columns, rows, note=note)


def _cell(v: Any) -> str:
    if isinstance(v, float):
        return f"{v:.4g}"
    return str(v)


def render_metrics(snapshot: dict[str, Any], *, title: str = "metrics") -> str:
    """Render a registry snapshot (see :meth:`repro.obs.MetricsRegistry.snapshot`).

    One block per instrument family — counters, gauges, histograms — plus
    derived ratios (cache hit rate, runner cache hit rate) when their
    inputs are present.  The CLI prints this after each experiment run
    with ``--metrics``.
    """
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    sections: list[str] = []
    if counters:
        sections.append(
            render_table(
                f"{title}: counters",
                ["name", "value"],
                [[name, value] for name, value in counters.items()],
            )
        )
    if gauges:
        sections.append(
            render_table(
                f"{title}: gauges",
                ["name", "last", "min", "max", "sets"],
                [
                    [name, g["value"], _opt(g["min"]), _opt(g["max"]), g["n_sets"]]
                    for name, g in gauges.items()
                ],
            )
        )
    if histograms:
        sections.append(
            render_table(
                f"{title}: histograms (log2 buckets)",
                ["name", "count", "mean", "min", "max"],
                [
                    [name, h["count"], h["mean"], _opt(h["min"]), _opt(h["max"])]
                    for name, h in histograms.items()
                ],
            )
        )
    derived: list[str] = []
    hits, misses = counters.get("cache.hits", 0), counters.get("cache.misses", 0)
    if hits + misses:
        derived.append(f"cache hit ratio: {hits / (hits + misses):.3f}")
    rhits = counters.get("runner.cache_hits", 0)
    rmisses = counters.get("runner.cache_misses", 0)
    if rhits + rmisses:
        derived.append(f"runner cache hit ratio: {rhits / (rhits + rmisses):.3f}")
    if derived:
        sections.append("\n".join(derived))
    if not sections:
        sections.append(f"{title}: no events recorded")
    return "\n\n".join(sections)


def _opt(v: Any) -> str:
    return "-" if v is None else _cell(v)
