"""Sweep specifications: what an experiment wants computed, point by point.

A :class:`SweepPoint` is one self-contained unit of work — a registered
kernel name plus every parameter that computation depends on (device
identity and seed included).  Nothing is inherited from ambient state:
the executor can hand a point to any worker process, or look its result
up by content address, and get bit-identical output either way.

A :class:`SweepSpec` is an ordered tuple of points.  Results always come
back in spec order, whatever the worker count, which is what makes
``--jobs N`` invisible in experiment reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterable

from repro.errors import ConfigurationError
from repro.runner.cache import CACHE_EPOCH, fingerprint


def _freeze(value: Any) -> Any:
    """Deep-convert parameter values to hashable form (lists -> tuples)."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        raise ConfigurationError("sweep params must be flat; nest via tuples instead")
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    raise ConfigurationError(
        f"unsupported sweep parameter {value!r} of type {type(value).__name__}"
    )


@dataclass(frozen=True)
class SweepPoint:
    """One kernel invocation, fully described by its parameters."""

    kernel: str
    params: tuple[tuple[str, Any], ...]  # sorted (name, value) pairs

    @classmethod
    def make(cls, kernel: str, **params: Any) -> "SweepPoint":
        """Build a point, canonicalizing parameter order and value types."""
        if not kernel:
            raise ConfigurationError("kernel name must be non-empty")
        frozen = tuple(sorted((k, _freeze(v)) for k, v in params.items()))
        return cls(kernel=kernel, params=frozen)

    def param_dict(self) -> dict[str, Any]:
        """Parameters as a plain dict (what the kernel is called with)."""
        return dict(self.params)

    def fingerprint(self, *, epoch: int = CACHE_EPOCH) -> str:
        """Content address of this point under the given cache epoch."""
        return fingerprint(self.kernel, self.param_dict(), epoch=epoch)


@dataclass(frozen=True)
class SweepSpec:
    """An ordered, named collection of sweep points."""

    name: str
    points: tuple[SweepPoint, ...]

    @classmethod
    def make(cls, name: str, points: Iterable[SweepPoint]) -> "SweepSpec":
        pts = tuple(points)
        if not pts:
            raise ConfigurationError(f"sweep {name!r} has no points")
        return cls(name=name, points=pts)

    def __len__(self) -> int:
        return len(self.points)
