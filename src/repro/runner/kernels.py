"""Registered sweep kernels: the per-point bodies of the migrated experiments.

Each kernel is a pure function of its keyword parameters — it constructs
its own devices, workloads and trees from them, so the same parameters
give bit-identical results in any process, in any order, with or without
the result cache.  Kernels are addressed by name (a plain string) so a
:class:`~repro.runner.spec.SweepPoint` stays picklable and its
fingerprint stays stable across refactors that move code around.

Keep kernels *thin*: they should call into the same measurement helpers
the experiments used when they ran serially, not duplicate logic.  Fits,
table assembly and everything else cheap stays in the experiment module.
"""

from __future__ import annotations

from typing import Any, Callable

from repro.errors import ConfigurationError

_REGISTRY: dict[str, Callable[..., Any]] = {}


def register(name: str):
    """Class a function as a sweep kernel under ``name``."""

    def deco(fn: Callable[..., Any]) -> Callable[..., Any]:
        if name in _REGISTRY:
            raise ConfigurationError(f"duplicate kernel name {name!r}")
        _REGISTRY[name] = fn
        return fn

    return deco


def get_kernel(name: str) -> Callable[..., Any]:
    """Resolve a kernel by registered name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown kernel {name!r}; registered: {sorted(_REGISTRY)}"
        ) from None


def kernel_names() -> tuple[str, ...]:
    """All registered kernel names, sorted."""
    return tuple(sorted(_REGISTRY))


# -- E3: affine-model validation (Table 2) ---------------------------------


@register("affine_validation_device")
def affine_validation_device(
    *,
    device: str,
    io_sizes: tuple[int, ...],
    reads_per_size: int,
    seed: int,
) -> dict[str, Any]:
    """Random-read size ladder on one zoo disk; per-size mean IO times."""
    import numpy as np

    from repro.experiments.devices import make_hdd

    hdd = make_hdd(device, seed=seed)
    rng = np.random.default_rng(seed + 1)
    mean_sizes: list[float] = []
    mean_times: list[float] = []
    for io in io_sizes:
        blocks = (hdd.capacity_bytes - io) // 512
        offsets = rng.integers(0, blocks, size=reads_per_size) * 512
        samples = hdd.read_batch([int(o) for o in offsets], int(io))
        mean_sizes.append(float(io))
        mean_times.append(float(np.mean(samples)))
    return {"mean_sizes": mean_sizes, "mean_times": mean_times}


# -- E5: B-tree node-size sweep (Figure 2) ---------------------------------


@register("btree_nodesize_point")
def btree_nodesize_point(
    *,
    node_bytes: int,
    n_entries: int,
    cache_bytes: int,
    universe: int,
    n_queries: int,
    n_inserts: int,
    warmup_queries: int,
    seed: int,
) -> dict[str, float]:
    """Load a fresh B-tree at one node size on the default HDD; measure."""
    from repro.experiments.common import build_load, measure_tree_ops
    from repro.experiments.devices import default_hdd
    from repro.storage.stack import StorageStack
    from repro.trees.btree import BTree, BTreeConfig

    pairs, keys = build_load(n_entries, universe, seed=seed)
    device = default_hdd(seed=seed + node_bytes % 97)
    storage = StorageStack(device, cache_bytes)
    tree = BTree(storage, BTreeConfig(node_bytes=node_bytes))
    tree.bulk_load(pairs)
    times = measure_tree_ops(
        tree,
        keys,
        universe,
        n_queries=n_queries,
        n_inserts=n_inserts,
        warmup_queries=warmup_queries,
        seed=seed,
    )
    return {
        "query_ms": times.query_seconds_per_op * 1e3,
        "insert_ms": times.insert_seconds_per_op * 1e3,
    }


# -- E6: Bε-tree node-size sweep (Figure 3) --------------------------------


@register("betree_nodesize_point")
def betree_nodesize_point(
    *,
    node_bytes: int,
    n_entries: int,
    cache_bytes: int,
    fanout: int,
    universe: int,
    n_queries: int,
    inserts_per_buffer_fill: float,
    max_inserts: int,
    warmup_queries: int,
    seed: int,
) -> dict[str, float]:
    """Load a fresh Bε-tree at one node size; prefill the root buffer, measure."""
    from repro.experiments.common import build_load, measure_tree_ops
    from repro.experiments.devices import default_hdd
    from repro.storage.stack import StorageStack
    from repro.trees.betree import BeTreeConfig, OptimizedBeTree
    from repro.workloads.generators import insert_stream

    pairs, keys = build_load(n_entries, universe, seed=seed)
    device = default_hdd(seed=seed + node_bytes % 97)
    storage = StorageStack(device, cache_bytes)
    config = BeTreeConfig(node_bytes=node_bytes, fanout=fanout)
    tree = OptimizedBeTree(storage, config)
    tree.bulk_load(pairs)
    # Pre-fill the (empty-after-load) root buffer with unmeasured inserts,
    # then measure over enough further inserts to cover flush cascades —
    # Bε insert cost only exists as an amortized quantity.
    buffer_msgs = config.buffer_budget_bytes // config.fmt.message_bytes
    tree.put_many(insert_stream(universe, min(buffer_msgs, max_inserts), seed=seed + 7))
    n_inserts = min(max_inserts, max(3000, int(inserts_per_buffer_fill * buffer_msgs)))
    times = measure_tree_ops(
        tree,
        keys,
        universe,
        n_queries=n_queries,
        n_inserts=n_inserts,
        warmup_queries=warmup_queries,
        seed=seed,
    )
    return {
        "query_ms": times.query_seconds_per_op * 1e3,
        "insert_ms": times.insert_seconds_per_op * 1e3,
    }


# -- E17: autotune convergence, one device per point -----------------------


@register("autotune_device")
def autotune_device(
    *,
    device: str,
    node_sizes: tuple[int, ...],
    n_entries: int,
    cache_bytes: int,
    universe: int,
    n_queries: int,
    warmup_queries: int,
    seed: int,
) -> dict[str, Any]:
    """Sweep, mis-configure, tune and re-measure one zoo device.

    Returns the full :class:`~repro.experiments.exp_autotune.DeviceTuneRow`
    payload plus the fitted :class:`~repro.tuning.DeviceProfile` (needed by
    the cross-device static-configuration foil, which must run after all
    points are in).
    """
    from repro.experiments import exp_autotune

    return exp_autotune.measure_device(
        device,
        node_sizes=tuple(node_sizes),
        n_entries=n_entries,
        cache_bytes=cache_bytes,
        universe=universe,
        n_queries=n_queries,
        warmup_queries=warmup_queries,
        seed=seed,
    )


# -- E18: tail latency and throughput under injected faults -----------------


@register("tail_resilience_tree")
def tail_resilience_tree(
    *,
    tree: str,
    plan_json: str,
    intensity: float,
    policy: str,
    n_entries: int,
    cache_bytes: int,
    universe: int,
    n_queries: int,
    warmup_queries: int,
    seed: int,
) -> dict[str, Any]:
    """Per-query latency distribution of one tree under one (plan, policy)."""
    from repro.experiments import exp_tail_resilience

    return exp_tail_resilience.measure_tree(
        tree,
        plan_json=plan_json,
        intensity=intensity,
        policy=policy,
        n_entries=n_entries,
        cache_bytes=cache_bytes,
        universe=universe,
        n_queries=n_queries,
        warmup_queries=warmup_queries,
        seed=seed,
    )


# -- E19: serving tail latency vs offered load ------------------------------


@register("serve_tail_point")
def serve_tail_point(
    *,
    tree: str,
    policy: str,
    total_rate: float,
    duration_seconds: float,
    plan_json: str,
    n_entries: int,
    universe: int,
    n_shards: int,
    shard_policy: str,
    replicas: int,
    batch: int,
    node_bytes: int,
    cache_bytes: int,
    warm_queries: int,
    seed: int,
) -> dict[str, Any]:
    """One serving cluster at one (tree, offered load, policy)."""
    from repro.experiments import exp_serve_tail

    return exp_serve_tail.measure_serve(
        tree=tree,
        policy=policy,
        total_rate=total_rate,
        duration_seconds=duration_seconds,
        plan_json=plan_json,
        n_entries=n_entries,
        universe=universe,
        n_shards=n_shards,
        shard_policy=shard_policy,
        replicas=replicas,
        batch=batch,
        node_bytes=node_bytes,
        cache_bytes=cache_bytes,
        warm_queries=warm_queries,
        seed=seed,
    )


# -- E21: durability knobs (group commit, checkpoints) across cost models ----


@register("durability_point")
def durability_point(
    *,
    device: str,
    tree: str,
    group_commit: int,
    checkpoint_every: int,
    n_ops: int,
    n_load: int,
    universe: int,
    node_bytes: int,
    cache_bytes: int,
    wal_bytes: int,
    crash_rate: float,
    loss_penalty: float,
    crash_fraction: float,
    seed: int,
) -> dict[str, Any]:
    """One (cost model, group commit, checkpoint) durable write-path point."""
    from repro.experiments import exp_durability

    return exp_durability.measure_durability(
        device=device,
        tree=tree,
        group_commit=group_commit,
        checkpoint_every=checkpoint_every,
        n_ops=n_ops,
        n_load=n_load,
        universe=universe,
        node_bytes=node_bytes,
        cache_bytes=cache_bytes,
        wal_bytes=wal_bytes,
        crash_rate=crash_rate,
        loss_penalty=loss_penalty,
        crash_fraction=crash_fraction,
        seed=seed,
    )


# -- E20: cache-oblivious tier vs knobbed trees across cost models -----------


@register("cob_compare_point")
def cob_compare_point(
    *,
    tree: str,
    model: str,
    node_bytes: int,
    n_entries: int,
    universe: int,
    n_queries: int,
    n_inserts: int,
    warmup_queries: int,
    parallelism: int,
    cache_bytes: int,
    seed: int,
) -> dict[str, float]:
    """One (tree, cost model, node size) op-cost measurement."""
    from repro.experiments import exp_cob_compare

    return exp_cob_compare.measure_point(
        tree=tree,
        model=model,
        node_bytes=node_bytes,
        n_entries=n_entries,
        universe=universe,
        n_queries=n_queries,
        n_inserts=n_inserts,
        warmup_queries=warmup_queries,
        parallelism=parallelism,
        cache_bytes=cache_bytes,
        seed=seed,
    )


@register("cob_pdam_threads_point")
def cob_pdam_threads_point(
    *,
    mode: str,
    clients: int,
    parallelism: int,
    block_bytes: int,
    n_keys: int,
    queries_per_client: int,
    seed: int,
) -> dict[str, float]:
    """Lemma 13 panel: k closed-loop clients over one index layout."""
    import numpy as np

    from repro.models.pdam import PDAMModel
    from repro.storage.ideal import PDAMDevice
    from repro.trees.btree.veb import PDAMQuerySimulator, StaticSearchTree

    keys = np.arange(1, n_keys + 1, dtype=np.int64) * 3
    tree = StaticSearchTree(keys)
    device = PDAMDevice(
        PDAMModel(parallelism=parallelism, block_bytes=block_bytes)
    )
    sim = PDAMQuerySimulator(device, tree, mode=mode)
    out = sim.run(clients, queries_per_client, seed=seed)
    return {"throughput": out.throughput}


@register("tail_resilience_pdam")
def tail_resilience_pdam(
    *,
    plan_json: str,
    intensity: float,
    policy: str,
    parallelism: int,
    clients: int,
    n_rounds: int,
    seed: int,
) -> dict[str, Any]:
    """Closed-loop PDAM throughput under channel stalls, one (plan, policy)."""
    from repro.experiments import exp_tail_resilience

    return exp_tail_resilience.measure_pdam(
        plan_json=plan_json,
        intensity=intensity,
        policy=policy,
        parallelism=parallelism,
        clients=clients,
        n_rounds=n_rounds,
        seed=seed,
    )
