"""repro.runner — parallel sweep execution with content-addressed caching.

The runner turns an experiment's inner loop into data: a
:class:`~repro.runner.spec.SweepSpec` of pure, fully-parameterized
:class:`~repro.runner.spec.SweepPoint`\\ s, executed by
:func:`~repro.runner.executor.run_sweep` serially or across cores with
bit-identical results, and memoized on disk by
:class:`~repro.runner.cache.ResultCache`.  See docs/runner.md.
"""

from repro.runner.cache import (
    CACHE_DIR_ENV,
    CACHE_EPOCH,
    MISS,
    ResultCache,
    default_cache_dir,
    fingerprint,
)
from repro.runner.executor import (
    ON_ERROR_MODES,
    PointError,
    SweepReport,
    resolve_jobs,
    run_sweep,
)
from repro.runner.kernels import get_kernel, kernel_names, register
from repro.runner.spec import SweepPoint, SweepSpec

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_EPOCH",
    "MISS",
    "ON_ERROR_MODES",
    "PointError",
    "ResultCache",
    "SweepPoint",
    "SweepReport",
    "SweepSpec",
    "default_cache_dir",
    "fingerprint",
    "get_kernel",
    "kernel_names",
    "register",
    "resolve_jobs",
    "run_sweep",
]
