"""Content-addressed on-disk result cache for sweep points.

A sweep point's result is a pure function of its parameters: kernels
construct every device, workload and tree from the values inside the
point, so ``(kernel name, params)`` fully determines the outcome.  The
cache exploits that: results are stored under a SHA-256 fingerprint of

* the kernel name,
* the canonical JSON of the parameters (sorted keys — dict order never
  leaks into the key),
* the repo-declared :data:`CACHE_EPOCH`.

Re-running an experiment therefore only recomputes points whose inputs
changed; everything else is a file read.

**Epoch invalidation.**  The fingerprint cannot see *code*.  When a change
alters what a kernel computes for the same parameters — a simulator timing
fix, a different eviction policy, a new measurement protocol — bump
:data:`CACHE_EPOCH` and every previously cached result is invalidated at
once.  Pure refactors (renames, speedups that keep results bit-identical)
must NOT bump it; that is the whole point of the hot-path work in
``repro.storage``.  See docs/runner.md for the rules.

Values are stored with :mod:`pickle` (results carry dataclasses such as
:class:`~repro.tuning.calibrate.DeviceProfile`); the cache directory is
therefore trusted local state, not an interchange format.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import pickle
import tempfile
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import OBS

LOG = logging.getLogger("repro.runner.cache")

#: Bump this (and only this) to invalidate every cached sweep result after
#: a semantic change to simulators, workloads, or measurement protocol.
CACHE_EPOCH = 1

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

_MISS = object()


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache`` in cwd."""
    env = os.environ.get(CACHE_DIR_ENV)
    return Path(env) if env else Path(".repro-cache")


def _jsonable(value: Any) -> Any:
    """Canonicalize a parameter value for hashing (tuples become lists)."""
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, bool) or value is None or isinstance(value, (int, float, str)):
        return value
    raise ConfigurationError(
        f"unfingerprintable parameter value {value!r} of type {type(value).__name__}"
    )


def fingerprint(kernel: str, params: dict[str, Any], *, epoch: int = CACHE_EPOCH) -> str:
    """SHA-256 content address of one sweep point."""
    payload = {
        "kernel": kernel,
        "params": _jsonable(params),
        "epoch": int(epoch),
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Pickle files named by fingerprint, two-level fanned out on disk.

    Writes are atomic (temp file + :func:`os.replace`), so concurrent
    executors racing on the same point at worst compute it twice — they
    never read a torn file.

    **Corrupt entries are quarantined, not left in place.**  Any failure
    to unpickle — truncation, garbage bytes, *and* stale-layout failures
    such as ``AttributeError``/``ModuleNotFoundError`` from a class that
    moved or changed since the entry was written — is treated as a miss,
    and the offending file is moved to a ``quarantine/`` sibling of the
    fingerprint fan-out so the same entry cannot fail again on the next
    run (and stays inspectable for debugging).
    """

    #: Directory (under the cache root) corrupt entries are moved into.
    QUARANTINE_DIR = "quarantine"

    def __init__(self, root: Path | str) -> None:
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, fp: str) -> Path:
        return self.root / fp[:2] / f"{fp}.pkl"

    def get(self, fp: str) -> Any:
        """The cached value for ``fp``, or :data:`MISS` when absent/corrupt."""
        path = self._path(fp)
        try:
            fh = path.open("rb")
        except OSError:
            self.misses += 1
            return _MISS
        try:
            with fh:
                value = pickle.load(fh)
        except Exception as exc:
            # Unpickling can fail in arbitrary ways (UnpicklingError,
            # EOFError on truncation, AttributeError/ModuleNotFoundError on
            # stale class layouts, ...).  All of them mean the same thing:
            # this entry is unusable — quarantine it and recompute.  The
            # entry key is logged (and counted) so quarantined results are
            # diagnosable without digging through quarantine/ by hand.
            LOG.warning(
                "quarantining corrupt cache entry %s (%s: %s)",
                fp,
                type(exc).__name__,
                exc,
            )
            if OBS.enabled:
                OBS.counter("runner.cache.quarantined").inc()
            self._quarantine(path)
            self.misses += 1
            return _MISS
        self.hits += 1
        return value

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry out of the lookup path (atomic rename)."""
        qdir = self.root / self.QUARANTINE_DIR
        try:
            qdir.mkdir(parents=True, exist_ok=True)
            os.replace(path, qdir / path.name)
        except OSError:
            # Cross-device or permission trouble: deleting still unblocks
            # the cache, losing only the forensic copy.
            try:
                path.unlink()
            except OSError:
                pass
        self.quarantined += 1

    def put(self, fp: str, value: Any) -> None:
        """Store ``value`` under ``fp`` atomically."""
        path = self._path(fp)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @staticmethod
    def is_miss(value: Any) -> bool:
        """Whether a :meth:`get` return value means "not cached"."""
        return value is _MISS


#: Sentinel returned by :meth:`ResultCache.get` on a miss; compare with
#: :meth:`ResultCache.is_miss` (cached values may legitimately be None).
MISS = _MISS
