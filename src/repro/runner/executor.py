"""Sweep executor: serial or multiprocess, with optional result caching.

The contract is strict determinism: :func:`run_sweep` returns results in
spec order, and every result is bit-identical whether it was computed in
this process, in a worker, or read back from the cache.  Kernels make
that possible by being pure functions of their parameters; the executor
makes it visible by never letting scheduling order leak into output
order.

Worker processes are forked (Linux), so kernels and their imports are
inherited rather than re-imported; the payload crossing the pipe carries
the spec index, so out-of-order arrivals (:meth:`Pool.imap_unordered`)
land back in their spec slot.

**Crash safety.**  Fresh results are written to the cache *as each point
completes*, not after the whole sweep: an interrupted sweep — a crashed
worker, a ^C, an OOM kill — resumes from its completed points on the
next run.  A kernel that raises aborts the sweep by default
(``on_error="raise"``, previous behaviour); with ``on_error="isolate"``
the failing point yields a :class:`PointError` placeholder in its spec
slot and every other point still completes.  ``PointError`` results are
never cached — a fixed kernel recomputes them.
"""

from __future__ import annotations

import contextlib
import gc
import multiprocessing
import os
import time
import traceback
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.runner.cache import ResultCache
from repro.runner.kernels import get_kernel
from repro.runner.spec import SweepSpec

#: Valid values for :func:`run_sweep`'s ``on_error`` parameter.
ON_ERROR_MODES = ("raise", "isolate")


@dataclass(frozen=True)
class PointError:
    """Placeholder result for a sweep point whose kernel raised.

    Returned (in the failing point's spec slot) by
    :func:`run_sweep(..., on_error="isolate")` so one bad point cannot
    sink a thousand good ones.  Carries enough to diagnose without
    re-running: the kernel name, the point's cache fingerprint, and the
    worker-side exception rendered to strings (the original exception
    object may not survive the pool boundary).
    """

    kernel: str
    fingerprint: str
    error_type: str
    message: str
    traceback: str

    def __str__(self) -> str:
        return (
            f"PointError({self.kernel}: {self.error_type}: {self.message} "
            f"[fingerprint {self.fingerprint[:12]}])"
        )


@dataclass
class SweepReport:
    """What a sweep run did, alongside its results."""

    spec_name: str
    n_points: int
    n_cached: int = 0
    n_computed: int = 0
    n_errors: int = 0
    jobs: int = 1
    fingerprints: tuple[str, ...] = field(default=())

    def summary(self) -> str:
        errors = f", {self.n_errors} errors" if self.n_errors else ""
        return (
            f"sweep {self.spec_name}: {self.n_points} points "
            f"({self.n_cached} cached, {self.n_computed} computed{errors}, "
            f"jobs={self.jobs})"
        )


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 -> all cores, else max(1, jobs)."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return jobs


@contextlib.contextmanager
def _gc_paused():
    """Suspend cyclic garbage collection for the duration of a kernel.

    Kernels allocate millions of small objects (load tuples, tree nodes,
    messages); the cyclic collector re-scans that long-lived heap on every
    threshold crossing and was costing more wall time than the simulation
    arithmetic itself.  Reference counting still reclaims everything the
    kernels free (their structures are acyclic apart from the caches' LRU
    sentinel rings, which live exactly as long as the kernel run), so
    pausing the collector changes no observable result — collection
    resumes, and the deferred scan happens, as soon as the kernel returns.
    """
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def _run_point(
    payload: tuple[int, str, dict[str, Any], bool, bool],
) -> tuple[int, tuple[Any, ...]]:
    """Worker entry point: run one kernel.  Module-level for picklability.

    Returns ``(spec_index, outcome)`` with outcome either
    ``("ok", value, wall_seconds)`` or — only when ``guarded`` —
    ``("err", type_name, message, traceback_str)``.  Unguarded workers
    let the exception propagate so the pool re-raises it in the parent
    (the ``on_error="raise"`` contract).  The kernel call itself is
    identical in every mode, so results stay bit-for-bit the same.
    """
    idx, kernel_name, params, timed, guarded = payload
    start = time.perf_counter() if timed else 0.0
    try:
        with _gc_paused():
            value = get_kernel(kernel_name)(**params)
    except Exception as exc:
        if not guarded:
            raise
        return idx, ("err", type(exc).__name__, str(exc), traceback.format_exc())
    seconds = time.perf_counter() - start if timed else 0.0
    return idx, ("ok", value, seconds)


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    report: SweepReport | None = None,
    on_error: str = "raise",
) -> list[Any]:
    """Execute every point in ``spec``; results in spec order.

    ``jobs=1`` computes in-process; ``jobs>1`` fans uncached points over a
    fork-context :class:`multiprocessing.Pool`.  When ``cache`` is given,
    points whose fingerprint is present are read back instead of computed,
    and each fresh result is stored *the moment it completes*, so an
    interrupted sweep resumes from partial progress.

    ``on_error="raise"`` (default) propagates the first kernel exception
    (points already completed stay cached); ``on_error="isolate"`` puts a
    :class:`PointError` in the failing point's slot and keeps going.
    """
    if on_error not in ON_ERROR_MODES:
        raise ConfigurationError(
            f"on_error must be one of {ON_ERROR_MODES}, got {on_error!r}"
        )
    guarded = on_error == "isolate"
    jobs = resolve_jobs(jobs)
    results: list[Any] = [None] * len(spec.points)
    pending: list[int] = []  # spec indices that must be computed
    fingerprints: list[str] = []

    for i, point in enumerate(spec.points):
        fp = point.fingerprint()
        fingerprints.append(fp)
        if cache is not None:
            value = cache.get(fp)
            if not ResultCache.is_miss(value):
                results[i] = value
                continue
        pending.append(i)

    observe = OBS.enabled
    if observe:
        OBS.counter("runner.points").inc(len(spec.points))
        OBS.counter("runner.cache_hits").inc(len(spec.points) - len(pending))
        OBS.counter("runner.cache_misses").inc(len(pending))

    n_errors = 0

    def settle(i: int, outcome: tuple[Any, ...]) -> None:
        """Land one arrival in its spec slot; cache and observe it now."""
        nonlocal n_errors
        if outcome[0] == "ok":
            _, value, seconds = outcome
            results[i] = value
            if cache is not None:
                cache.put(fingerprints[i], value)
            if observe:
                OBS.histogram("runner.point_seconds").record(seconds)
                if OBS.tracer is not None:
                    OBS.tracer.record(
                        "runner.point",
                        0.0,
                        seconds,
                        clock="wall",
                        sweep=spec.name,
                        kernel=spec.points[i].kernel,
                        fingerprint=fingerprints[i],
                    )
        else:
            _, error_type, message, tb = outcome
            n_errors += 1
            results[i] = PointError(
                kernel=spec.points[i].kernel,
                fingerprint=fingerprints[i],
                error_type=error_type,
                message=message,
                traceback=tb,
            )
            if observe:
                OBS.counter("runner.point_errors").inc()

    payloads = [
        (i, spec.points[i].kernel, spec.points[i].param_dict(), observe, guarded)
        for i in pending
    ]
    if payloads:
        sweep_start = time.perf_counter()
        if jobs > 1 and len(payloads) > 1:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
                # Unordered arrival => each result is cached as soon as it
                # exists, not when its spec-order predecessors finish.
                for i, outcome in pool.imap_unordered(_run_point, payloads):
                    settle(i, outcome)
        else:
            for payload in payloads:
                settle(*_run_point(payload))
        if observe:
            sweep_end = time.perf_counter()
            if OBS.tracer is not None:
                OBS.tracer.record(
                    "runner.sweep",
                    sweep_start,
                    sweep_end,
                    clock="wall",
                    sweep=spec.name,
                    jobs=jobs,
                    n_points=len(spec.points),
                    n_computed=len(pending),
                )

    if report is not None:
        report.spec_name = spec.name
        report.n_points = len(spec.points)
        report.n_cached = len(spec.points) - len(pending)
        report.n_computed = len(pending)
        report.n_errors = n_errors
        report.jobs = jobs
        report.fingerprints = tuple(fingerprints)
    return results
