"""Sweep executor: serial or multiprocess, with optional result caching.

The contract is strict determinism: :func:`run_sweep` returns results in
spec order, and every result is bit-identical whether it was computed in
this process, in a worker, or read back from the cache.  Kernels make
that possible by being pure functions of their parameters; the executor
makes it visible by never letting scheduling order leak into output
order.

Worker processes are forked (Linux), so kernels and their imports are
inherited rather than re-imported; the payload crossing the pipe is just
``(kernel_name, params_dict)`` and the pickled result coming back.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ConfigurationError
from repro.obs import OBS
from repro.runner.cache import ResultCache
from repro.runner.kernels import get_kernel
from repro.runner.spec import SweepSpec


@dataclass
class SweepReport:
    """What a sweep run did, alongside its results."""

    spec_name: str
    n_points: int
    n_cached: int = 0
    n_computed: int = 0
    jobs: int = 1
    fingerprints: tuple[str, ...] = field(default=())

    def summary(self) -> str:
        return (
            f"sweep {self.spec_name}: {self.n_points} points "
            f"({self.n_cached} cached, {self.n_computed} computed, jobs={self.jobs})"
        )


def resolve_jobs(jobs: int | None) -> int:
    """Normalize a ``--jobs`` value: None/0 -> all cores, else max(1, jobs)."""
    if jobs is None or jobs == 0:
        return os.cpu_count() or 1
    if jobs < 0:
        raise ConfigurationError(f"jobs must be >= 0, got {jobs}")
    return jobs


def _compute(payload: tuple[str, dict[str, Any]]) -> Any:
    """Worker entry point: run one kernel.  Module-level for picklability."""
    kernel_name, params = payload
    return get_kernel(kernel_name)(**params)


def _compute_timed(payload: tuple[str, dict[str, Any]]) -> tuple[Any, float]:
    """Like :func:`_compute`, returning ``(result, wall_seconds)``.

    Used when observability is on: workers time themselves, so per-point
    wall clocks survive the pool boundary (a forked worker's own metrics
    registry dies with it).  The kernel call is identical, so results stay
    bit-for-bit the same as the untimed path.
    """
    start = time.perf_counter()
    return _compute(payload), time.perf_counter() - start


def run_sweep(
    spec: SweepSpec,
    *,
    jobs: int = 1,
    cache: ResultCache | None = None,
    report: SweepReport | None = None,
) -> list[Any]:
    """Execute every point in ``spec``; results in spec order.

    ``jobs=1`` computes in-process; ``jobs>1`` fans uncached points over a
    fork-context :class:`multiprocessing.Pool`.  When ``cache`` is given,
    points whose fingerprint is present are read back instead of computed,
    and fresh results are stored after computing.
    """
    jobs = resolve_jobs(jobs)
    results: list[Any] = [None] * len(spec.points)
    pending: list[int] = []  # spec indices that must be computed
    fingerprints: list[str] = []

    for i, point in enumerate(spec.points):
        fp = point.fingerprint()
        fingerprints.append(fp)
        if cache is not None:
            value = cache.get(fp)
            if not ResultCache.is_miss(value):
                results[i] = value
                continue
        pending.append(i)

    observe = OBS.enabled
    if observe:
        OBS.counter("runner.points").inc(len(spec.points))
        OBS.counter("runner.cache_hits").inc(len(spec.points) - len(pending))
        OBS.counter("runner.cache_misses").inc(len(pending))

    payloads = [
        (spec.points[i].kernel, spec.points[i].param_dict()) for i in pending
    ]
    if payloads:
        worker = _compute_timed if observe else _compute
        sweep_start = time.perf_counter()
        if jobs > 1 and len(payloads) > 1:
            ctx = multiprocessing.get_context("fork")
            with ctx.Pool(processes=min(jobs, len(payloads))) as pool:
                computed = pool.map(worker, payloads)
        else:
            computed = [worker(p) for p in payloads]
        if observe:
            sweep_end = time.perf_counter()
            for (i, (value, seconds)) in zip(pending, computed):
                OBS.histogram("runner.point_seconds").record(seconds)
                if OBS.tracer is not None:
                    OBS.tracer.record(
                        "runner.point",
                        0.0,
                        seconds,
                        clock="wall",
                        sweep=spec.name,
                        kernel=spec.points[i].kernel,
                        fingerprint=fingerprints[i],
                    )
            if OBS.tracer is not None:
                OBS.tracer.record(
                    "runner.sweep",
                    sweep_start,
                    sweep_end,
                    clock="wall",
                    sweep=spec.name,
                    jobs=jobs,
                    n_points=len(spec.points),
                    n_computed=len(pending),
                )
            computed = [value for value, _ in computed]
        for i, value in zip(pending, computed):
            results[i] = value
            if cache is not None:
                cache.put(fingerprints[i], value)

    if report is not None:
        report.spec_name = spec.name
        report.n_points = len(spec.points)
        report.n_cached = len(spec.points) - len(pending)
        report.n_computed = len(pending)
        report.jobs = jobs
        report.fingerprints = tuple(fingerprints)
    return results
