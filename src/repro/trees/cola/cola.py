"""Basic (amortized) cache-oblivious lookahead array.

Structure [Bender et al., "Cache-Oblivious Streaming B-trees", SPAA 2007]:
``log N`` levels, level ``k`` holding a sorted array of exactly ``2^k``
entries or nothing.  An insert places a 1-element array at level 0 and,
binomial-counter style, repeatedly merges equal-size full levels upward
until it lands in an empty slot.  Each element therefore moves ``O(log N)``
times, always inside *sequential* merges of big arrays — the
write-optimized property — at an amortized IO cost of
``O((log N) / B_entries)`` per insert.  A query binary-searches every
non-empty level: ``O(log^2 N)`` comparisons and, without fractional
cascading (not implemented — the paper's citation is for the structural
idea), ``O(log(len/B))`` block probes per uncached level.

Deletes are tombstones, resolved during merges and dropped when a merge
produces the (new) largest level.

Why this is in a DAM-refinement reproduction: the COLA is the
*cache-oblivious* point in the write-optimized design space the paper
surveys — it has no node-size knob at all, so under the affine model its
insert cost is automatically near-optimal at any ``alpha``, while its
query cost pays the ``log N`` levels.  The epsilon-tradeoff experiment
(``exp_epsilon_tradeoff``) places it on the same axes as the Bε-tree.

IO accounting mirrors :mod:`repro.trees.lsm`: levels are stored in device
extents; merges read their inputs and write their output sequentially;
binary-search probes charge one block read each.  Levels small enough to
fit a configured RAM budget (taken greedily from level 0 upward, matching
what a real implementation pins) are free to search.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError, TreeError
from repro.storage.allocator import ExtentAllocator
from repro.storage.device import BlockDevice
from repro.trees.lsm.sstable import TOMBSTONE
from repro.trees.sizing import EntryFormat


@dataclass(frozen=True)
class COLAConfig:
    """Tuning of one COLA instance.

    The COLA has no node-size parameter — that is its point.  The only
    knobs are the entry format, the block size used to price search
    probes, and how much RAM the top levels may pin.
    """

    fmt: EntryFormat = EntryFormat()
    block_bytes: int = 4096
    ram_bytes: int = 1 << 20
    #: Keep one fence key in RAM per this many entries of each on-disk
    #: level, bracketing searches to a single block probe per level — the
    #: engineering analogue of the COLA paper's fractional cascading
    #: (which exists to achieve the same bound cache-obliviously).
    #: ``None`` disables fences: a search then pays ~log2(blocks) probes.
    fence_every: int | None = 64

    def __post_init__(self) -> None:
        if self.block_bytes <= 0:
            raise ConfigurationError("block_bytes must be positive")
        if self.ram_bytes < 0:
            raise ConfigurationError("ram_bytes must be non-negative")
        if self.fence_every is not None and self.fence_every < 2:
            raise ConfigurationError("fence_every must be >= 2 (or None)")

    @property
    def entries_per_block(self) -> int:
        """Entries per search-probe block."""
        return max(1, self.block_bytes // self.fmt.entry_bytes)


class _Level:
    """One sorted run of exactly ``2^k`` logical slots."""

    __slots__ = ("keys", "values", "offset", "nbytes")

    def __init__(self, keys: list[int], values: list[Any]) -> None:
        self.keys = keys
        self.values = values
        self.offset = -1
        self.nbytes = 0


class COLA:
    """A cache-oblivious lookahead array storing ``int -> value`` pairs."""

    def __init__(
        self,
        device: BlockDevice,
        config: COLAConfig | None = None,
        *,
        allocator: ExtentAllocator | None = None,
    ) -> None:
        self.device = device
        self.config = config or COLAConfig()
        self.allocator = allocator or ExtentAllocator(device.capacity_bytes, alignment=512)
        self.levels: list[_Level | None] = []
        self.user_bytes_modified = 0
        self.merges = 0

    # -- write path --------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self._push(key, value)

    def delete(self, key: int) -> None:
        """Delete ``key`` (tombstone)."""
        self._push(key, TOMBSTONE)

    def put_many(self, pairs) -> None:
        """Insert many pairs, identical in accounting to an insert loop.

        Same contract as every other tree's ``put_many``
        (``tests/trees/test_put_many.py``): device clock, stats, merge
        counts, and level structure must equal calling :meth:`insert`
        once per pair exactly — the batch only removes Python overhead.
        """
        push = self._push
        for key, value in pairs:
            push(key, value)

    def _push(self, key: int, value: Any) -> None:
        self.user_bytes_modified += self.config.fmt.entry_bytes
        carry = _Level([key], [value])
        k = 0
        while True:
            if k == len(self.levels):
                self.levels.append(None)
            resident = self.levels[k]
            if resident is None:
                self.levels[k] = carry
                self._write_level(carry, k)
                return
            # Merge the carry with the resident level; result has <= 2^(k+1)
            # logical entries (duplicates collapse, which is fine: a level
            # only needs to be *at most* its capacity in this variant).
            self.levels[k] = None
            carry = self._merge(resident, carry, k)
            k += 1

    def _merge(self, older: _Level, newer: _Level, k: int) -> _Level:
        """Sequentially merge two level-``k`` runs; newer wins per key."""
        self.merges += 1
        # Charge reads of both inputs (level 0 carries were never written).
        for lvl in (older, newer):
            if lvl.offset >= 0:
                self.device.read(lvl.offset, lvl.nbytes)
                self._free_level(lvl)
        drop_tombstones = all(
            self.levels[j] is None for j in range(k + 1, len(self.levels))
        )
        keys: list[int] = []
        values: list[Any] = []
        i = j = 0
        ok, ov = older.keys, older.values
        nk, nv = newer.keys, newer.values
        while i < len(ok) or j < len(nk):
            if j >= len(nk) or (i < len(ok) and ok[i] < nk[j]):
                key, val = ok[i], ov[i]
                i += 1
            elif i >= len(ok) or nk[j] < ok[i]:
                key, val = nk[j], nv[j]
                j += 1
            else:  # equal keys: newer shadows older
                key, val = nk[j], nv[j]
                i += 1
                j += 1
            if drop_tombstones and val is TOMBSTONE:
                continue
            keys.append(key)
            values.append(val)
        return _Level(keys, values)

    def _level_bytes(self, level: _Level) -> int:
        return self.config.fmt.node_header_bytes + len(level.keys) * self.config.fmt.entry_bytes

    @property
    def _pin_threshold_bytes(self) -> int:
        """Largest level kept purely in RAM (never written).

        Level sizes double, so pinning every level of at most ``ram/4``
        bytes costs at most ``ram/2`` in total — a real COLA behaves the
        same way, which is what makes its small-level churn free.
        """
        return self.config.ram_bytes // 4

    def _write_level(self, level: _Level, k: int) -> None:
        if not level.keys:
            # A merge can produce an empty run (all tombstones dropped).
            self.levels[k] = None
            return
        nbytes = self._level_bytes(level)
        if nbytes <= self._pin_threshold_bytes:
            return  # stays in RAM; offset remains -1
        level.offset = self.allocator.alloc(nbytes)
        level.nbytes = nbytes
        self.device.write(level.offset, nbytes)

    def _free_level(self, level: _Level) -> None:
        if level.offset >= 0:
            self.allocator.free(level.offset, level.nbytes)
            level.offset = -1
            level.nbytes = 0

    # -- read path --------------------------------------------------------------

    def _ram_resident(self) -> list[bool]:
        """Which levels are pinned in RAM (exactly the never-written ones)."""
        return [lvl is None or lvl.offset < 0 for lvl in self.levels]

    def _probe(self, level: _Level, key: int, resident: bool) -> tuple[Any, bool]:
        """Binary-search one level, charging block reads for the probes."""
        if not resident:
            if self.config.fence_every is not None:
                # RAM-resident fence keys bracket the search to one block.
                i = bisect.bisect_left(level.keys, key)
                frac = i * self.config.fmt.entry_bytes
                block = min(self.config.block_bytes, level.nbytes)
                off = level.offset + min(
                    (frac // block) * block, max(0, level.nbytes - block)
                )
                self.device.read(off, block)
            else:
                per_block = self.config.entries_per_block
                n_blocks = max(1, (len(level.keys) + per_block - 1) // per_block)
                # An uncached binary search touches ~log2(blocks) distinct
                # blocks, plus the final one containing the answer.
                probes = max(1, n_blocks.bit_length())
                span = level.nbytes
                step = max(1, span // probes)
                for p in range(probes):
                    off = level.offset + min(
                        p * step, max(0, span - self.config.block_bytes)
                    )
                    self.device.read(off, min(self.config.block_bytes, span))
        i = bisect.bisect_left(level.keys, key)
        if i < len(level.keys) and level.keys[i] == key:
            return level.values[i], True
        return None, False

    def get(self, key: int) -> Any | None:
        """Point query; returns the value or ``None``."""
        residency = self._ram_resident()
        for k, lvl in enumerate(self.levels):  # newest (smallest) first
            if lvl is None:
                continue
            value, found = self._probe(lvl, key, residency[k])
            if found:
                return None if value is TOMBSTONE else value
        return None

    def get_many(self, keys) -> list[Any | None]:
        """Batched point queries, accounting-identical to a ``get`` loop."""
        get = self.get
        return [get(key) for key in keys]

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All pairs with ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return []
        residency = self._ram_resident()
        result: dict[int, Any] = {}
        # Oldest (largest) level first so newer levels overwrite.
        for k in range(len(self.levels) - 1, -1, -1):
            lvl = self.levels[k]
            if lvl is None:
                continue
            i = bisect.bisect_left(lvl.keys, lo)
            j = bisect.bisect_right(lvl.keys, hi)
            if j > i and not residency[k]:
                nbytes = max(
                    self.config.block_bytes,
                    (j - i) * self.config.fmt.entry_bytes,
                )
                nbytes = min(nbytes, lvl.nbytes)
                offset = min(
                    lvl.offset + i * self.config.fmt.entry_bytes,
                    lvl.offset + lvl.nbytes - nbytes,
                )
                self.device.read(offset, nbytes)
            for key, val in zip(lvl.keys[i:j], lvl.values[i:j]):
                result[key] = val
        return sorted((k, v) for k, v in result.items() if v is not TOMBSTONE)

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order."""
        lo, hi = -(1 << 62), 1 << 62
        yield from self.range(lo, hi)

    def __len__(self) -> int:
        return len(list(self.items()))

    # -- invariants --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert level sizing, sortedness, and extent consistency."""
        for k, lvl in enumerate(self.levels):
            if lvl is None:
                continue
            if len(lvl.keys) != len(lvl.values):
                raise TreeError(f"level {k}: keys/values mismatch")
            if not lvl.keys:
                raise TreeError(f"level {k}: empty run should be None")
            if len(lvl.keys) > (1 << k):
                raise TreeError(
                    f"level {k}: {len(lvl.keys)} entries exceeds capacity {1 << k}"
                )
            for a, b in zip(lvl.keys, lvl.keys[1:]):
                if a >= b:
                    raise TreeError(f"level {k}: keys out of order")
            written = lvl.offset >= 0
            big = self._level_bytes(lvl) > self._pin_threshold_bytes
            if big and not written:
                raise TreeError(f"level {k}: too large for RAM but never written")
            if written and lvl.nbytes <= 0:
                raise TreeError(f"level {k}: written with a bad extent")
