"""Cache-oblivious lookahead array (COLA).

The paper's Section 8 resolves the PDAM node-size dilemma with ideas "from
cache-oblivious data structures ... see e.g. [11, 20] for write-optimized
examples" — [11] being the cache-oblivious streaming B-tree, whose core is
the COLA.  This package implements the basic (amortized) COLA as a third
write-optimized dictionary alongside the Bε-tree and the LSM-tree.
"""

from repro.trees.cola.cola import COLA, COLAConfig

__all__ = ["COLA", "COLAConfig"]
