"""B-tree (paper Sections 3 and 5) and the Section 8 PDAM machinery.

* :class:`~repro.trees.btree.tree.BTree` — byte-budgeted B-tree over a
  :class:`~repro.storage.stack.StorageStack`.
* :mod:`repro.trees.btree.veb` — static B-tree image in van Emde Boas
  block layout with PDAM-adaptive traversal (Lemma 13).
"""

from repro.trees.btree.node import BTreeNode
from repro.trees.btree.tree import BTree, BTreeConfig
from repro.trees.btree.veb import (
    StaticSearchTree,
    VEBLayout,
    PDAMQuerySimulator,
)

__all__ = [
    "BTreeNode",
    "BTree",
    "BTreeConfig",
    "StaticSearchTree",
    "VEBLayout",
    "PDAMQuerySimulator",
]
