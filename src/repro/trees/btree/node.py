"""B-tree node representation.

Nodes are plain Python objects; the storage stack prices their movement.
A leaf holds sorted ``keys`` with parallel ``values``; an internal node
holds ``len(children) - 1`` pivot ``keys`` where keys in ``children[i]``
are ``< keys[i]`` and keys in ``children[i+1]`` are ``>= keys[i]``.
"""

from __future__ import annotations

from typing import Any

from repro.trees.sizing import EntryFormat


class BTreeNode:
    """One B-tree node (leaf or internal)."""

    __slots__ = ("node_id", "is_leaf", "keys", "values", "children")

    def __init__(
        self,
        node_id: int,
        is_leaf: bool,
        keys: list[int] | None = None,
        values: list[Any] | None = None,
        children: list[int] | None = None,
    ) -> None:
        self.node_id = node_id
        self.is_leaf = is_leaf
        self.keys: list[int] = keys if keys is not None else []
        if is_leaf:
            self.values: list[Any] = values if values is not None else []
            self.children: list[int] = []
        else:
            self.values = []
            self.children = children if children is not None else []

    def nbytes(self, fmt: EntryFormat) -> int:
        """Current byte footprint under the entry format."""
        if self.is_leaf:
            return fmt.leaf_bytes(len(self.keys))
        return fmt.internal_bytes(len(self.children))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "leaf" if self.is_leaf else "internal"
        return f"BTreeNode(id={self.node_id}, {kind}, n={len(self.keys)})"
