"""Section 8: PDAM-adaptive B-tree layouts (Lemma 13).

The paper's dilemma: with ``P`` query clients, a B-tree wants nodes of size
``B`` (one block per level, all clients progress every step); with one
client it wants nodes of size ``PB`` (the lone client's read-ahead fills all
``P`` slots).  The resolution is nodes of size ``PB`` organized internally
in a **van Emde Boas layout**, so that a client can consume any prefix of a
node usefully: with ``k`` clients each getting ``P/k`` slots of read-ahead,
a client resolves ``~log2((P/k)·B)`` comparison levels per step, for
``Theta(log_{PB/k} N)`` steps per query (Lemma 13).

This module provides:

* :class:`StaticSearchTree` — a perfect binary search tree over sorted
  keys (heap-indexed, keys at internal nodes = max of left subtree).
* :class:`VEBLayout` — the recursive van Emde Boas ordering of a perfect
  binary tree; recursive *bottom* subtrees are contiguous at every scale,
  which is the property that makes consecutive-block read-ahead useful.
* :class:`PDAMQuerySimulator` — runs ``k`` closed-loop query clients over
  a :class:`~repro.storage.ideal.PDAMDevice` through the
  :class:`~repro.storage.scheduler.ReadAheadScheduler`, in one of three
  layouts: ``"flat_b"`` (size-``B`` nodes), ``"flat_pb"`` (size-``PB``
  nodes, whole-node reads), ``"veb_pb"`` (size-``PB`` nodes, vEB order).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.ideal import PDAMDevice
from repro.storage.scheduler import ReadAheadScheduler


class StaticSearchTree:
    """Perfect binary search tree over sorted keys, heap-indexed.

    Leaves sit at depth ``height - 1`` and hold the sorted keys (padded to
    a power of two with ``+inf`` sentinels); each internal node stores the
    maximum key of its left subtree, so search goes left iff
    ``key <= node_key``.
    """

    def __init__(self, sorted_keys) -> None:
        keys = np.asarray(sorted_keys, dtype=np.int64)
        if keys.ndim != 1 or keys.size == 0:
            raise ConfigurationError("need a non-empty 1-D array of keys")
        if np.any(np.diff(keys) <= 0):
            raise ConfigurationError("keys must be strictly increasing")
        self.n_keys = int(keys.size)
        n_leaves = 1 << max(1, math.ceil(math.log2(self.n_keys)))
        self.height = int(math.log2(n_leaves)) + 1  # levels, root inclusive
        self.n_nodes = 2 * n_leaves - 1
        self._first_leaf = n_leaves - 1
        # Sentinel: pad with a value larger than every real key.  When the
        # largest key is INT64_MAX, ``keys[-1] + 1`` would wrap to
        # INT64_MIN and corrupt every search path right of the real keys —
        # only a problem when padding is actually needed (an exact
        # power-of-two key count has no pad leaves).
        self._leaf_keys = np.empty(n_leaves, dtype=np.int64)
        self._leaf_keys[: self.n_keys] = keys
        if n_leaves > self.n_keys:
            if keys[-1] == np.iinfo(np.int64).max:
                raise ConfigurationError(
                    "largest key is INT64_MAX but the leaf level needs "
                    f"padding ({self.n_keys} keys, {n_leaves} leaves): the "
                    "pad sentinel must exceed every real key; use an exact "
                    "power-of-two key count or a smaller largest key"
                )
            self._leaf_keys[self.n_keys :] = np.int64(keys[-1]) + 1
        # Internal node i's key = max key of its left subtree, computed
        # bottom-up: the "max of subtree" of leaves is themselves.
        subtree_max = np.empty(self.n_nodes, dtype=np.int64)
        subtree_max[self._first_leaf :] = self._leaf_keys
        node_key = np.empty(self._first_leaf, dtype=np.int64)
        for i in range(self._first_leaf - 1, -1, -1):
            left, right = 2 * i + 1, 2 * i + 2
            node_key[i] = subtree_max[left]
            subtree_max[i] = subtree_max[right]
        self._node_key = node_key

    def leaf_of(self, key: int) -> int:
        """Heap index of the leaf a search for ``key`` ends at."""
        return self.search_path(key)[-1]

    def search_path(self, key: int) -> list[int]:
        """Heap indices of the root-to-leaf comparison path for ``key``."""
        path = []
        i = 0
        while i < self._first_leaf:
            path.append(i)
            i = 2 * i + 1 if key <= self._node_key[i] else 2 * i + 2
        path.append(i)
        return path

    def contains(self, key: int) -> bool:
        """Whether ``key`` is one of the stored keys.

        Padded leaves are excluded: a search for the pad sentinel value
        (``keys[-1] + 1``) lands on a pad leaf, which holds it but does
        not store it.
        """
        leaf = self.leaf_of(key)
        idx = leaf - self._first_leaf
        return idx < self.n_keys and bool(self._leaf_keys[idx] == key)

    def nodes_at_depth(self, root: int, depth: int) -> range:
        """Heap indices of ``root``'s descendants ``depth`` levels down.

        Heap numbering keeps each such cohort contiguous:
        ``[(root+1)*2^d - 1, (root+2)*2^d - 1)``.
        """
        return range(((root + 1) << depth) - 1, ((root + 2) << depth) - 1)


class VEBLayout:
    """Van Emde Boas ordering of a perfect binary tree of ``height`` levels.

    ``position[heap_index]`` gives each node's rank in the layout.  The
    recursion: a tree of height ``h`` lays out its top ``ceil(h/2)`` levels
    (recursively), then each bottom subtree (recursively) left to right —
    so every recursive bottom subtree occupies a *contiguous* range.
    """

    def __init__(self, height: int) -> None:
        if height < 1:
            raise ConfigurationError(f"height must be >= 1, got {height}")
        self.height = height
        self.n_nodes = (1 << height) - 1
        self.position = np.empty(self.n_nodes, dtype=np.int64)
        self._next = 0
        self._assign(0, height)
        assert self._next == self.n_nodes
        del self._next

    def _assign(self, root: int, h: int) -> None:
        if h == 1:
            self.position[root] = self._next
            self._next += 1
            return
        top_h = (h + 1) // 2
        bottom_h = h - top_h
        self._assign_top(root, top_h)
        first = ((root + 1) << top_h) - 1
        for sub_root in range(first, first + (1 << top_h)):
            self._assign(sub_root, bottom_h)

    def _assign_top(self, root: int, h: int) -> None:
        """Lay out the height-``h`` top tree rooted at ``root`` recursively."""
        if h == 1:
            self.position[root] = self._next
            self._next += 1
            return
        top_h = (h + 1) // 2
        bottom_h = h - top_h
        self._assign_top(root, top_h)
        first = ((root + 1) << top_h) - 1
        for sub_root in range(first, first + (1 << top_h)):
            self._assign_top(sub_root, bottom_h)


@dataclass(frozen=True)
class QueryThroughputResult:
    """Outcome of one concurrent-query simulation."""

    mode: str
    clients: int
    queries_completed: int
    steps: int

    @property
    def throughput(self) -> float:
        """Queries completed per PDAM time step."""
        return self.queries_completed / self.steps if self.steps else 0.0


class _Client:
    """One closed-loop query client's traversal state."""

    __slots__ = ("queries", "qi", "path", "pi", "fetched", "done")

    def __init__(self, queries: list[int]) -> None:
        self.queries = queries
        self.qi = 0            # which query
        self.path: list[int] = []
        self.pi = 0            # next unresolved path position
        self.fetched: set[int] = set()
        self.done = False


class PDAMQuerySimulator:
    """Concurrent point queries over a PDAM device in three node layouts.

    Parameters
    ----------
    device:
        The :class:`~repro.storage.ideal.PDAMDevice`; its ``P`` and ``B``
        define the slot structure.
    tree:
        The static search tree holding the keys.
    mode:
        ``"flat_b"``, ``"flat_pb"``, or ``"veb_pb"`` (see module docs).
    pivot_bytes:
        Bytes per binary comparison node (key + pointer); determines how
        many tree levels fit in one block.
    """

    def __init__(
        self,
        device: PDAMDevice,
        tree: StaticSearchTree,
        *,
        mode: str = "veb_pb",
        pivot_bytes: int = 16,
    ) -> None:
        if mode not in ("flat_b", "flat_pb", "veb_pb"):
            raise ConfigurationError(f"unknown mode {mode!r}")
        if pivot_bytes <= 0:
            raise ConfigurationError(f"pivot_bytes must be positive, got {pivot_bytes}")
        self.device = device
        self.tree = tree
        self.mode = mode
        entries_per_block = device.block_bytes // pivot_bytes
        if entries_per_block < 1:
            raise ConfigurationError(
                f"block of {device.block_bytes} bytes holds no {pivot_bytes}-byte pivots"
            )
        # Levels of the binary tree that fit in one block / one PB node.
        self.levels_per_block = max(1, int(math.log2(entries_per_block + 1)))
        self.levels_per_supernode = max(
            self.levels_per_block,
            int(math.log2(device.parallelism * entries_per_block + 1)),
        )
        self.blocks_per_supernode = math.ceil(
            ((1 << self.levels_per_supernode) - 1) / entries_per_block
        )
        self._entries_per_block = entries_per_block

        if mode == "veb_pb":
            self._veb = VEBLayout(tree.height)
            # Align blocks to whole recursive subtrees: a block holds
            # 2^levels - 1 nodes (one slot is sacrificed), so the vEB
            # recursion's contiguous bottom trees never straddle blocks.
            self._veb_block_entries = (1 << self.levels_per_block) - 1
            self._block_of = self._block_of_veb
        elif mode == "flat_b":
            self._block_of = self._block_of_flat(self.levels_per_block)
        else:  # flat_pb
            self._block_of = self._block_of_flat(self.levels_per_supernode)

    # -- block address maps --------------------------------------------------

    def _block_of_veb(self, node: int) -> int:
        return int(self._veb.position[node]) // self._veb_block_entries

    def _block_of_flat(self, levels_per_group: int):
        """Block address map for BFS-grouped supernodes.

        The binary tree is cut into supernodes of ``levels_per_group``
        levels.  Each supernode's nodes are packed into consecutive blocks.
        Supernode ids are *scattered* across the block address space with a
        bijective bit-mix: real B-tree nodes land wherever the allocator put
        them, so consecutive block addresses are unrelated nodes and
        read-ahead must not accidentally prefetch the next path node (that
        advantage is exactly what the vEB layout earns and the flat layouts
        lack).  The map is computed lazily because only visited nodes
        matter.
        """
        group_nodes = (1 << levels_per_group) - 1
        group_blocks = math.ceil(group_nodes / self._entries_per_block)
        max_blocks = self.device.capacity_bytes // self.device.block_bytes
        slot_bits = max(1, int(math.log2(max(2, max_blocks // group_blocks))))
        n_slots = 1 << slot_bits

        def scatter(idx: int) -> int:
            # Odd multiplier modulo a power of two is a bijection, so
            # distinct supernodes never collide.
            return (idx * 0x9E3779B1) & (n_slots - 1)

        supernode_index: dict[tuple[int, int], int] = {}

        def supernode_of(node: int) -> tuple[tuple[int, int], int]:
            # Climb to the supernode root: depth within tree mod group levels.
            depth = int(math.floor(math.log2(node + 1)))
            rel = depth % levels_per_group
            root = node
            for _ in range(rel):
                root = (root - 1) // 2
            key = (root, depth - rel)
            idx = supernode_index.setdefault(key, len(supernode_index))
            return key, scatter(idx)

        def block_of(node: int) -> int:
            (root, _), slot = supernode_of(node)
            if group_blocks == 1:
                return slot
            # Position within the supernode in BFS order.
            depth_in = int(math.floor(math.log2(node + 1))) - int(
                math.floor(math.log2(root + 1))
            )
            first_at_depth = ((root + 1) << depth_in) - 1
            pos = ((1 << depth_in) - 1) + (node - first_at_depth)
            return slot * group_blocks + pos // self._entries_per_block

        block_of.blocks_per_group = group_blocks  # type: ignore[attr-defined]
        return block_of

    def _supernode_blocks(self, node: int) -> list[int]:
        """All block addresses of the supernode containing ``node`` (flat_pb)."""
        assert self.mode == "flat_pb", "only flat_pb reads whole supernodes"
        base = self._block_of(node)
        group_blocks = self._block_of.blocks_per_group  # type: ignore[attr-defined]
        start = (base // group_blocks) * group_blocks
        return list(range(start, start + group_blocks))

    # -- simulation -----------------------------------------------------------

    def run(
        self,
        n_clients: int,
        queries_per_client: int,
        *,
        seed: int = 0,
    ) -> QueryThroughputResult:
        """Run ``n_clients`` closed-loop clients for the given query count.

        Each client issues uniform-random point queries; a query is resolved
        once every comparison node on its root-to-leaf path has had its
        block fetched.  No blocks are cached across queries (pessimal but
        uniform across modes, matching Lemma 13's accounting).
        """
        if n_clients <= 0 or queries_per_client <= 0:
            raise ConfigurationError("need positive client and query counts")
        rng = np.random.default_rng(seed)
        clients = []
        for _ in range(n_clients):
            qs = rng.integers(0, self.tree.n_keys, size=queries_per_client)
            clients.append(_Client([int(q) for q in qs]))

        scheduler = ReadAheadScheduler(self.device, expand_readahead=True)
        completed = 0
        active = set(range(n_clients))
        awaiting: set[int] = set()

        while active:
            for ci in sorted(active - awaiting):
                c = clients[ci]
                if not c.path:
                    c.path = self.tree.search_path(c.queries[c.qi])
                    c.pi = 0
                    c.fetched = set()
                demand = self._next_demand(c)
                scheduler.submit(ci, demand)
                awaiting.add(ci)
            served = scheduler.step()
            for ci, blocks in served.items():
                awaiting.discard(ci)
                c = clients[ci]
                c.fetched.update(blocks)
                completed += self._advance(c)
                if c.done:
                    active.discard(ci)
        return QueryThroughputResult(
            mode=self.mode,
            clients=n_clients,
            queries_completed=completed,
            steps=scheduler.steps,
        )

    def _next_demand(self, c: _Client) -> int:
        if self.mode == "flat_pb":
            for blk in self._supernode_blocks(c.path[c.pi]):
                if blk not in c.fetched:
                    return blk
            raise AssertionError("supernode fully fetched but client not advanced")
        return self._block_of(c.path[c.pi])

    def _advance(self, c: _Client) -> int:
        """Advance a client as far as its fetched blocks allow.

        Returns the number of queries completed (0 or more — a client can
        finish a query and immediately begin the next with fetched = {}).
        """
        finished = 0
        while True:
            if self.mode == "flat_pb":
                while c.pi < len(c.path) and all(
                    b in c.fetched for b in self._supernode_blocks(c.path[c.pi])
                ):
                    c.pi += 1
            else:
                while c.pi < len(c.path) and self._block_of(c.path[c.pi]) in c.fetched:
                    c.pi += 1
            if c.pi < len(c.path):
                return finished
            # Query resolved.
            finished += 1
            c.qi += 1
            c.path = []
            c.fetched = set()
            c.pi = 0
            if c.qi >= len(c.queries):
                c.done = True
                return finished
            c.path = self.tree.search_path(c.queries[c.qi])
