"""Byte-budgeted B-tree over a simulated storage stack.

The tree follows the paper's Section 3 description: a balanced search tree
with "fat nodes of size B" — here ``B`` is a byte budget, so a leaf holds
``~B/entry_bytes`` pairs and an internal node ``~B/pivot_bytes`` children.
All node IOs move the full ``node_bytes`` extent, which is what makes the
affine per-op cost ``(1 + alpha*B) * log_B(N/M)`` (Lemma 5) and the
write amplification ``Theta(B)`` (Lemma 3).

Structural algorithms are the classic single-pass top-down ones: inserts
split any full child *before* descending; deletes refill any minimal child
(borrow from a sibling or merge) before descending.  Both therefore touch
each level once, matching the one-IO-per-level cost model.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError, TreeError
from repro.obs import OBS
from repro.storage.stack import StorageStack
from repro.trees.btree.node import BTreeNode
from repro.trees.sizing import EntryFormat


@dataclass(frozen=True)
class BTreeConfig:
    """Tuning of one B-tree instance.

    Parameters
    ----------
    node_bytes:
        The node size ``B`` — the single knob the paper's Figure 2 sweeps.
    fmt:
        Key/value/pointer widths.
    bulk_fill:
        Target fill fraction for :meth:`BTree.bulk_load` (leaves and
        internals), default 0.9 as in typical bulk loaders.
    """

    node_bytes: int = 65536
    fmt: EntryFormat = EntryFormat()
    bulk_fill: float = 0.9

    def __post_init__(self) -> None:
        # Validate capacities up front (raises ConfigurationError if tiny).
        if not 0.1 <= self.bulk_fill <= 1.0:
            raise ConfigurationError(f"bulk_fill must be in [0.1, 1], got {self.bulk_fill}")
        self.fmt.leaf_capacity(self.node_bytes)
        self.fmt.internal_capacity(self.node_bytes)

    @property
    def leaf_capacity(self) -> int:
        """Max entries per leaf."""
        return self.fmt.leaf_capacity(self.node_bytes)

    @property
    def internal_capacity(self) -> int:
        """Max children per internal node."""
        return self.fmt.internal_capacity(self.node_bytes)


class BTree:
    """A B-tree dictionary storing ``int -> value`` pairs.

    All methods charge simulated device time through ``storage``; read the
    elapsed time from ``storage.io_seconds`` before/after an operation.
    """

    def __init__(self, storage: StorageStack, config: BTreeConfig | None = None) -> None:
        self.storage = storage
        self.config = config or BTreeConfig()
        self._next_id = 0
        self._count = 0
        self.user_bytes_modified = 0  # for write-amplification (Definition 3)
        root = self._new_node(is_leaf=True)
        self.root_id = root.node_id

    # -- node lifecycle -------------------------------------------------------

    def _new_node(self, *, is_leaf: bool) -> BTreeNode:
        node = BTreeNode(self._next_id, is_leaf)
        self._next_id += 1
        # Every node owns a full node_bytes extent regardless of fill: B-tree
        # IOs always move whole nodes.
        self.storage.create(node.node_id, node, self.config.node_bytes)
        return node

    def _get(self, node_id: int) -> BTreeNode:
        node = self.storage.get(node_id)
        assert isinstance(node, BTreeNode)
        return node

    def _dirty(self, node: BTreeNode) -> None:
        self.storage.mark_dirty(node.node_id)

    def _free(self, node: BTreeNode) -> None:
        self.storage.destroy(node.node_id)

    # -- basic properties -------------------------------------------------------

    def __len__(self) -> int:
        return self._count

    @property
    def height(self) -> int:
        """Levels from root to leaf inclusive (1 for a lone leaf root)."""
        h = 1
        node = self._get(self.root_id)
        while not node.is_leaf:
            node = self._get(node.children[0])
            h += 1
        return h

    # -- lookup -------------------------------------------------------------------

    def get(self, key: int) -> Any | None:
        """Point query; returns the value or ``None``."""
        if OBS.enabled:
            start = self.storage.device.clock
            value = self._lookup(key)
            OBS.op_event("btree.query", start, self.storage.device.clock, key=key)
            return value
        return self._lookup(key)

    def _lookup(self, key: int) -> Any | None:
        node = self._get(self.root_id)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            node = self._get(node.children[idx])
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            return node.values[i]
        return None

    def get_many(self, keys: list[int]) -> list[Any | None]:
        """Batched point queries; values (or ``None``) in input order.

        Descends level-synchronized: all lookups sit at the same depth (the
        tree is height-balanced), so each level needs one
        :meth:`~repro.storage.stack.StorageStack.read_many` of the distinct
        nodes the batch touches, in first-need order.  Two lookups sharing
        a node fetch it once — a batch of ``k`` point queries costs at most
        ``k`` leaf IOs plus the shared internal nodes, with the per-IO
        Python dispatch paid once per level instead of once per node.
        """
        if OBS.enabled:
            start = self.storage.device.clock
            values = self._lookup_many(keys)
            OBS.op_event(
                "btree.query_batch", start, self.storage.device.clock, n=len(keys)
            )
            return values
        return self._lookup_many(keys)

    def _lookup_many(self, keys: list[int]) -> list[Any | None]:
        results: list[Any | None] = [None] * len(keys)
        if not keys:
            return results
        at: list[int] = [self.root_id] * len(keys)  # current node id per key
        while True:
            distinct: list[int] = []
            seen: set[int] = set()
            for node_id in at:
                if node_id not in seen:
                    seen.add(node_id)
                    distinct.append(node_id)
            nodes = dict(zip(distinct, self.storage.read_many(distinct)))
            sample = nodes[at[0]]
            assert isinstance(sample, BTreeNode)
            if sample.is_leaf:
                break
            for i, key in enumerate(keys):
                node = nodes[at[i]]
                at[i] = node.children[bisect.bisect_right(node.keys, key)]
        for i, key in enumerate(keys):
            leaf = nodes[at[i]]
            j = bisect.bisect_left(leaf.keys, key)
            if j < len(leaf.keys) and leaf.keys[j] == key:
                results[i] = leaf.values[j]
        return results

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    # -- insert ---------------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        root = self._get(self.root_id)
        if self._is_full(root):
            self._grow_root()
            root = self._get(self.root_id)
        node = root
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            child = self._get(node.children[idx])
            if self._is_full(child):
                self._split_child(node, idx)
                # The split may have changed which side the key belongs to.
                idx = bisect.bisect_right(node.keys, key)
                child = self._get(node.children[idx])
            node = child
        i = bisect.bisect_left(node.keys, key)
        if i < len(node.keys) and node.keys[i] == key:
            node.values[i] = value
        else:
            node.keys.insert(i, key)
            node.values.insert(i, value)
            self._count += 1
        self.user_bytes_modified += self.config.fmt.entry_bytes
        self._dirty(node)

    def put_many(self, pairs: list[tuple[int, Any]]) -> None:
        """Batched inserts: identical to a serial loop of :meth:`insert`.

        A B-tree insert is structural top to bottom (splits happen on the
        way down), so there is no per-message work to batch away; this
        entry point exists so batch-aware callers can treat all trees
        uniformly, and hoists only the method lookup.
        """
        insert = self.insert
        for key, value in pairs:
            insert(key, value)

    def _is_full(self, node: BTreeNode) -> bool:
        if node.is_leaf:
            return len(node.keys) >= self.config.leaf_capacity
        return len(node.children) >= self.config.internal_capacity

    def _grow_root(self) -> None:
        """Add a new root above a full root, then split the old root."""
        old_root = self._get(self.root_id)
        new_root = self._new_node(is_leaf=False)
        new_root.children = [old_root.node_id]
        self.root_id = new_root.node_id
        self._dirty(new_root)
        self._split_child(new_root, 0)

    def _split_child(self, parent: BTreeNode, idx: int) -> None:
        """Split ``parent.children[idx]`` into two; parent gains one pivot."""
        if OBS.enabled:
            start = self.storage.device.clock
            self._split_child_impl(parent, idx)
            OBS.op_event("btree.split", start, self.storage.device.clock)
            return
        self._split_child_impl(parent, idx)

    def _split_child_impl(self, parent: BTreeNode, idx: int) -> None:
        child = self._get(parent.children[idx])
        right = self._new_node(is_leaf=child.is_leaf)
        if child.is_leaf:
            mid = len(child.keys) // 2
            right.keys = child.keys[mid:]
            right.values = child.values[mid:]
            del child.keys[mid:]
            del child.values[mid:]
            separator = right.keys[0]
        else:
            mid = len(child.children) // 2
            # Pivot keys: child has len(children)-1 keys; key[mid-1] moves up.
            separator = child.keys[mid - 1]
            right.keys = child.keys[mid:]
            right.children = child.children[mid:]
            del child.keys[mid - 1 :]
            del child.children[mid:]
        parent.keys.insert(idx, separator)
        parent.children.insert(idx + 1, right.node_id)
        self._dirty(child)
        self._dirty(right)
        self._dirty(parent)

    # -- delete --------------------------------------------------------------------

    def delete(self, key: int) -> bool:
        """Delete ``key``; returns whether it was present.

        Single-pass top-down: before descending into a child at minimum
        occupancy, refill it by borrowing from a sibling or merging.
        """
        node = self._get(self.root_id)
        while not node.is_leaf:
            idx = bisect.bisect_right(node.keys, key)
            child = self._get(node.children[idx])
            if self._is_minimal(child):
                idx = self._refill_child(node, idx)
                child = self._get(node.children[idx])
            # Collapse a root left with a single child.
            if node.node_id == self.root_id and len(node.children) == 1:
                self.root_id = node.children[0]
                self._free(node)
            node = child
        i = bisect.bisect_left(node.keys, key)
        if i >= len(node.keys) or node.keys[i] != key:
            return False
        del node.keys[i]
        del node.values[i]
        self._count -= 1
        self.user_bytes_modified += self.config.fmt.entry_bytes
        self._dirty(node)
        return True

    def _min_occupancy(self, node: BTreeNode) -> int:
        if node.is_leaf:
            return max(1, self.config.leaf_capacity // 4)
        return max(2, self.config.internal_capacity // 4)

    def _is_minimal(self, node: BTreeNode) -> bool:
        if node.is_leaf:
            return len(node.keys) <= self._min_occupancy(node)
        return len(node.children) <= self._min_occupancy(node)

    def _refill_child(self, parent: BTreeNode, idx: int) -> int:
        """Bring ``parent.children[idx]`` above minimal occupancy.

        Borrows from an adjacent sibling when it has spare entries, merges
        with it otherwise.  Returns the (possibly changed) child index the
        descent should continue into.
        """
        child = self._get(parent.children[idx])
        left = self._get(parent.children[idx - 1]) if idx > 0 else None
        right = (
            self._get(parent.children[idx + 1])
            if idx + 1 < len(parent.children)
            else None
        )
        if left is not None and not self._is_minimal(left):
            self._borrow_from_left(parent, idx, left, child)
            return idx
        if right is not None and not self._is_minimal(right):
            self._borrow_from_right(parent, idx, child, right)
            return idx
        # Merge with a sibling (prefer left so indices shift predictably).
        if left is not None:
            self._merge(parent, idx - 1, left, child)
            return idx - 1
        assert right is not None, "non-root internal node must have a sibling"
        self._merge(parent, idx, child, right)
        return idx

    def _borrow_from_left(
        self, parent: BTreeNode, idx: int, left: BTreeNode, child: BTreeNode
    ) -> None:
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            child.values.insert(0, left.values.pop())
            parent.keys[idx - 1] = child.keys[0]
        else:
            child.keys.insert(0, parent.keys[idx - 1])
            parent.keys[idx - 1] = left.keys.pop()
            child.children.insert(0, left.children.pop())
        self._dirty(left)
        self._dirty(child)
        self._dirty(parent)

    def _borrow_from_right(
        self, parent: BTreeNode, idx: int, child: BTreeNode, right: BTreeNode
    ) -> None:
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            child.values.append(right.values.pop(0))
            parent.keys[idx] = right.keys[0]
        else:
            child.keys.append(parent.keys[idx])
            parent.keys[idx] = right.keys.pop(0)
            child.children.append(right.children.pop(0))
        self._dirty(right)
        self._dirty(child)
        self._dirty(parent)

    def _merge(
        self, parent: BTreeNode, left_idx: int, left: BTreeNode, right: BTreeNode
    ) -> None:
        """Merge ``right`` into ``left``; parent loses one pivot."""
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.values.extend(right.values)
        else:
            left.keys.append(parent.keys[left_idx])
            left.keys.extend(right.keys)
            left.children.extend(right.children)
        del parent.keys[left_idx]
        del parent.children[left_idx + 1]
        self._free(right)
        self._dirty(left)
        self._dirty(parent)

    # -- range queries -----------------------------------------------------------

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All pairs with ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return []
        out: list[tuple[int, Any]] = []
        self._range_into(self.root_id, lo, hi, out)
        return out

    def _range_into(self, node_id: int, lo: int, hi: int, out: list) -> None:
        node = self._get(node_id)
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, lo)
            j = bisect.bisect_right(node.keys, hi)
            out.extend(zip(node.keys[i:j], node.values[i:j]))
            return
        first = bisect.bisect_right(node.keys, lo)
        last = bisect.bisect_right(node.keys, hi)
        for idx in range(first, last + 1):
            self._range_into(node.children[idx], lo, hi, out)

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order."""
        yield from self._items_of(self.root_id)

    def _items_of(self, node_id: int) -> Iterator[tuple[int, Any]]:
        node = self._get(node_id)
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for child in node.children:
            yield from self._items_of(child)

    # -- bulk load -----------------------------------------------------------------

    def bulk_load(self, pairs: list[tuple[int, Any]]) -> None:
        """Replace the tree's contents with sorted ``pairs``.

        Builds leaves left to right at ``bulk_fill`` occupancy and stacks
        internal levels on top.  With a first-fit allocator this lays the
        tree out nearly sequentially on disk — a *fresh* (unaged) tree.
        """
        if self._count:
            raise TreeError("bulk_load requires an empty tree")
        for i in range(1, len(pairs)):
            if pairs[i - 1][0] >= pairs[i][0]:
                raise TreeError("bulk_load requires strictly increasing keys")
        if not pairs:
            return
        old_root = self._get(self.root_id)
        self._free(old_root)

        per_leaf = max(2, int(self.config.leaf_capacity * self.config.bulk_fill))
        level: list[tuple[int, int]] = []  # (first_key, node_id) per node
        for start in range(0, len(pairs), per_leaf):
            chunk = pairs[start : start + per_leaf]
            leaf = self._new_node(is_leaf=True)
            leaf.keys = [k for k, _ in chunk]
            leaf.values = [v for _, v in chunk]
            self._dirty(leaf)
            level.append((leaf.keys[0], leaf.node_id))
        self._count = len(pairs)
        self.user_bytes_modified += len(pairs) * self.config.fmt.entry_bytes

        per_internal = max(2, int(self.config.internal_capacity * self.config.bulk_fill))
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            for start in range(0, len(level), per_internal):
                group = level[start : start + per_internal]
                if len(group) == 1 and next_level:
                    # Avoid a 1-child internal node: fold into the previous group.
                    prev_first, prev_id = next_level[-1]
                    prev = self._get(prev_id)
                    prev.keys.append(group[0][0])
                    prev.children.append(group[0][1])
                    self._dirty(prev)
                    continue
                node = self._new_node(is_leaf=False)
                node.children = [nid for _, nid in group]
                node.keys = [first for first, _ in group[1:]]
                self._dirty(node)
                next_level.append((group[0][0], node.node_id))
            level = next_level
        self.root_id = level[0][1]

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert search-tree order, balanced height, and byte budgets."""
        leaf_depths: set[int] = set()
        n = self._check_node(self.root_id, None, None, 0, leaf_depths)
        if n != self._count:
            raise TreeError(f"count mismatch: walked {n}, recorded {self._count}")
        if len(leaf_depths) > 1:
            raise TreeError(f"leaves at multiple depths: {sorted(leaf_depths)}")

    def _check_node(
        self,
        node_id: int,
        lo: int | None,
        hi: int | None,
        depth: int,
        leaf_depths: set[int],
    ) -> int:
        node = self._get(node_id)
        fmt = self.config.fmt
        if node.nbytes(fmt) > self.config.node_bytes:
            raise TreeError(
                f"node {node_id} overflows budget: {node.nbytes(fmt)} > {self.config.node_bytes}"
            )
        for a, b in zip(node.keys, node.keys[1:]):
            if a >= b:
                raise TreeError(f"node {node_id} keys out of order: {a} >= {b}")
        for k in node.keys:
            if (lo is not None and k < lo) or (hi is not None and k >= hi):
                raise TreeError(f"node {node_id} key {k} outside ({lo}, {hi})")
        if node.is_leaf:
            if len(node.keys) != len(node.values):
                raise TreeError(f"leaf {node_id} keys/values length mismatch")
            leaf_depths.add(depth)
            return len(node.keys)
        if len(node.children) != len(node.keys) + 1:
            raise TreeError(f"internal {node_id} has {len(node.children)} children, "
                            f"{len(node.keys)} keys")
        total = 0
        bounds = [lo] + list(node.keys) + [hi]
        for i, child in enumerate(node.children):
            total += self._check_node(child, bounds[i], bounds[i + 1], depth + 1, leaf_depths)
        return total
