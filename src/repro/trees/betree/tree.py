"""The Bε-tree of Lemma 8: message buffers, whole-node IOs.

Mutations enter the root as messages; when a node's buffer overflows, the
node *flushes*: it moves all messages destined for the child with the most
pending messages down one level (recursing if that child overflows in
turn).  Queries read the root-to-leaf path and logically apply every
relevant buffered message.

The fanout ``F`` is the paper's tuning knob ``F = B^ε + 1``: ``F ~ B``
degenerates to a B-tree, small constant ``F`` to a buffered repository
tree; practical trees use 10-20 (TokuDB targets 16).

All IOs move whole ``node_bytes`` extents — the naive cost model of
Lemma 8.  The Theorem 9 refinements live in
:class:`repro.trees.betree.optimized.OptimizedBeTree`.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError, TreeError
from repro.obs import OBS
from repro.storage.stack import StorageStack
from repro.trees.betree.messages import Message, MessageOp, apply_messages
from repro.trees.betree.node import BeNode, SegmentBuffer
from repro.trees.sizing import EntryFormat


@dataclass(frozen=True)
class BeTreeConfig:
    """Tuning of one Bε-tree instance.

    Parameters
    ----------
    node_bytes:
        Node size ``B`` in bytes (the Figure 3 sweep knob).
    fanout:
        Target fanout ``F``.  If ``None``, computed from ``epsilon`` as
        ``F = ceil(leaf_entries ** epsilon)`` (clamped to at least 2).
    epsilon:
        The ε of Bε; only used when ``fanout`` is ``None``.
    """

    node_bytes: int = 1 << 20
    fmt: EntryFormat = EntryFormat()
    fanout: int | None = 16
    epsilon: float = 0.5
    bulk_fill: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.epsilon <= 1.0:
            raise ConfigurationError(f"epsilon must be in [0, 1], got {self.epsilon}")
        if not 0.1 <= self.bulk_fill <= 1.0:
            raise ConfigurationError(f"bulk_fill must be in [0.1, 1], got {self.bulk_fill}")
        if self.fanout is not None and self.fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {self.fanout}")
        cap = self.fmt.leaf_capacity(self.node_bytes)  # validates node size
        f = self.target_fanout
        if self.fmt.internal_bytes(2 * f) > self.node_bytes:
            raise ConfigurationError(
                f"fanout {f} cannot fit in {self.node_bytes}-byte nodes"
            )
        del cap

    @property
    def leaf_capacity(self) -> int:
        """Max entries per leaf."""
        return self.fmt.leaf_capacity(self.node_bytes)

    @property
    def target_fanout(self) -> int:
        """The fanout ``F``, from ``fanout`` or ``leaf_entries ** epsilon``."""
        if self.fanout is not None:
            return self.fanout
        return max(2, math.ceil(self.leaf_capacity**self.epsilon))

    @property
    def max_children(self) -> int:
        """Split threshold: fanout may drift up to ``2F`` before splitting."""
        return 2 * self.target_fanout

    @property
    def buffer_budget_bytes(self) -> int:
        """Bytes of a node available for buffered messages."""
        budget = (
            self.node_bytes
            - self.fmt.node_header_bytes
            - self.max_children * self.fmt.pivot_bytes
        )
        if budget < self.fmt.message_bytes * self.max_children:
            raise ConfigurationError(
                f"node size {self.node_bytes} leaves no buffer room at fanout "
                f"{self.target_fanout}"
            )
        return budget


class BeTree:
    """A Bε-tree dictionary storing ``int -> value`` pairs."""

    def __init__(self, storage: StorageStack, config: BeTreeConfig | None = None) -> None:
        self.storage = storage
        self.config = config or BeTreeConfig()
        # Byte thresholds inverted to message-count thresholds:
        # buffer_bytes(n) = n * message_bytes is linear and monotonic, so
        # ``bytes > cap`` is exactly ``count > cap // message_bytes``.  The
        # per-insert budget check then needs no byte arithmetic at all.
        # Computed lazily on the first overflow check (not here) because
        # ``buffer_budget_bytes`` rejects configs whose nodes are too small
        # to buffer — and query-only trees at such sizes must still work.
        self._budget_msgs: int | None = None
        self._seg_cap_msgs = 0
        self._next_id = 0
        self._next_seq = 0
        self.user_bytes_modified = 0
        root = self._new_node(is_leaf=True)
        self.root_id = root.node_id

    # -- node lifecycle (overridden by the optimized tree) ---------------------

    def _new_node(self, *, is_leaf: bool) -> BeNode:
        node = BeNode(self._next_id, is_leaf)
        self._next_id += 1
        self._create_storage(node)
        return node

    def _create_storage(self, node: BeNode) -> None:
        self.storage.create(node.node_id, node, self.config.node_bytes)

    def _get(self, node_id: int) -> BeNode:
        node = self.storage.get(node_id)
        assert isinstance(node, BeNode)
        return node

    def _read_root_for_query(self) -> BeNode:
        """Fetch the root at the start of a query."""
        return self._get(self.root_id)

    def _read_for_query(self, parent: BeNode | None, idx: int, node_id: int) -> BeNode:
        """Fetch a node on a query path (whole node in the naive tree)."""
        return self._get(node_id)

    def _read_segment_for_query(self, node: BeNode, idx: int) -> None:
        """Charge inspecting segment ``idx`` of ``node`` on a query path.

        A no-op here: :meth:`_read_for_query` already moved the whole node.
        The Theorem 9 tree overrides this to charge only the segment.
        """

    def _read_for_range(self, node_id: int) -> BeNode:
        """Fetch a node during a range scan (whole node in both trees)."""
        return self._get(node_id)

    def _read_leaf_for_point_query(self, leaf: BeNode, key: int) -> None:
        """Charge the leaf access of a point query (whole node here)."""
        # _get in _read_for_query already charged it; nothing extra.

    def _dirty(self, node: BeNode) -> None:
        self.storage.mark_dirty(node.node_id)

    def _dirty_segment(self, node: BeNode, idx: int) -> None:
        """Segment-granularity dirtying; whole node in the naive tree."""
        self.storage.mark_dirty(node.node_id)

    def _dirty_pivots(self, node: BeNode) -> None:
        self.storage.mark_dirty(node.node_id)

    def _dirty_leaf_range(self, leaf: BeNode, lo_idx: int, hi_idx: int) -> None:
        self.storage.mark_dirty(leaf.node_id)

    def _free(self, node: BeNode) -> None:
        self.storage.destroy(node.node_id)

    # -- helpers ---------------------------------------------------------------

    def _seq(self) -> int:
        self._next_seq += 1
        return self._next_seq

    @staticmethod
    def _child_index(node: BeNode, key: int) -> int:
        return bisect.bisect_right(node.pivots, key)

    def _segment_overflow_bytes(self) -> int:
        """Per-segment byte cap; unbounded in the naive tree."""
        return self.config.buffer_budget_bytes

    # -- mutations ---------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self._put(Message(self._seq(), MessageOp.INSERT, key, value))

    def put_many(self, pairs) -> None:
        """Insert every ``(key, value)`` pair, in order.

        The batched write-side counterpart of the batched read paths:
        accounting (device traffic, cache stats, message sequence numbers)
        is identical to a serial loop of :meth:`insert` — the batching only
        removes per-call Python overhead, it never reorders messages.
        """
        seq = self._next_seq
        put = self._put
        make = Message
        op = MessageOp.INSERT
        for key, value in pairs:
            seq += 1
            self._next_seq = seq
            put(make(seq, op, key, value))
            seq = self._next_seq  # _put may cascade into further mutations

    def delete(self, key: int) -> None:
        """Delete ``key`` (a no-op if absent; encoded as a tombstone)."""
        self._put(Message(self._seq(), MessageOp.DELETE, key))

    def upsert(self, key: int, delta: int) -> None:
        """Add ``delta`` to the value of ``key`` (0 base if absent)."""
        self._put(Message(self._seq(), MessageOp.UPSERT, key, delta))

    def _put(self, msg: Message) -> None:
        self.user_bytes_modified += self.config.fmt.entry_bytes
        root = self._get(self.root_id)
        if root.is_leaf:
            self._apply_to_leaf(None, 0, [msg])
            return
        idx = self._child_index(root, msg.key)
        root.add_message(idx, msg)
        self._dirty_segment(root, idx)
        self._flush_overflows(root, changed_idx=idx)
        self._maybe_grow_root()

    def _ensure_thresholds(self) -> int:
        """Compute the count thresholds on first use; returns the budget.

        Deferred from ``__init__`` so that configs whose nodes cannot
        buffer (``buffer_budget_bytes`` raises) still support the
        query-only lifecycle; the error surfaces on the first insert,
        exactly where the old per-insert byte arithmetic raised it.
        """
        mb = self.config.fmt.message_bytes
        self._budget_msgs = self.config.buffer_budget_bytes // mb
        self._seg_cap_msgs = self._segment_overflow_bytes() // mb
        return self._budget_msgs

    def _buffer_over_budget(self, node: BeNode, changed_idx: int | None = None) -> bool:
        """Whether the node must flush, via precomputed count thresholds.

        ``changed_idx`` is the O(1) fast path: between public operations
        every segment respects the cap (flush restores it, and splits only
        redistribute messages), so after a single ``add_message(idx)`` the
        only segment that can newly exceed the cap is ``idx`` — the full
        scan and the single check return the same answer.
        """
        budget = self._budget_msgs
        if budget is None:
            budget = self._ensure_thresholds()
        if node.buffered_count > budget:
            return True
        cap = self._seg_cap_msgs
        if changed_idx is not None:
            return node.segments[changed_idx].count > cap
        return any(s.count > cap for s in node.segments)

    def _flush_overflows(self, node: BeNode, changed_idx: int | None = None) -> None:
        """Flush the fullest child until the node's buffer fits again."""
        while self._buffer_over_budget(node, changed_idx):
            self._flush_child(node, node.fullest_segment())
            changed_idx = None  # a flush may leave any segment the fullest

    def _flush_child(self, parent: BeNode, idx: int) -> None:
        """Move child ``idx``'s pending messages down one level."""
        if OBS.enabled:
            start = self.storage.device.clock
            self._flush_child_impl(parent, idx)
            OBS.op_event("betree.flush", start, self.storage.device.clock)
            return
        self._flush_child_impl(parent, idx)

    def _flush_child_impl(self, parent: BeNode, idx: int) -> None:
        msgs = parent.take_segment(idx)
        self._dirty_segment(parent, idx)
        if not msgs:
            raise TreeError("flushing an empty segment would loop forever")
        child = self._get(parent.children[idx])
        if child.is_leaf:
            self._apply_to_leaf(parent, idx, msgs)
            return
        for m in msgs:
            child.add_message(self._child_index(child, m.key), m)
        # The flush rewrites the child (its buffer changed wholesale).
        self._dirty(child)
        self._flush_overflows(child)
        if len(child.children) > self.config.max_children:
            self._split_internal(parent, idx)

    def _apply_to_leaf(self, parent: BeNode | None, idx: int, msgs: list[Message]) -> None:
        """Apply seq-sorted messages to a leaf; split/shrink as needed.

        ``parent`` is ``None`` only when the root itself is the leaf.
        """
        leaf = self._get(parent.children[idx]) if parent is not None else self._get(self.root_id)
        assert leaf.is_leaf
        pending: dict[int, Any] | None = None
        if len(msgs) > 8:
            # One pass both classifies and collects: a non-insert op aborts
            # into the serial loop below with `pending` discarded.
            pending = {}
            insert_op = MessageOp.INSERT
            for m in msgs:
                if m.op is not insert_op:
                    pending = None
                    break
                pending[m.key] = m.value  # seq order: last write wins
        if pending is not None:
            # All-insert batch (the flush hot path): the serial loop's final
            # state is fully determined by the key -> last-value map plus
            # sortedness, so overwrite present keys in place and merge the
            # fresh ones in a single O(n + k log n) pass instead of k
            # bisect-inserts, each of which memmoves the whole tail.
            keys, values = leaf.keys, leaf.values
            n = len(keys)
            fresh: list[tuple[int, Any]] = []
            for k, v in pending.items():
                i = bisect.bisect_left(keys, k)
                if i < n and keys[i] == k:
                    values[i] = v
                else:
                    fresh.append((k, v))
            if fresh:
                fresh.sort()
                mk: list[int] = []
                mv: list[Any] = []
                i = 0
                for k, v in fresh:
                    j = bisect.bisect_left(keys, k, i)
                    if j > i:
                        mk.extend(keys[i:j])
                        mv.extend(values[i:j])
                        i = j
                    mk.append(k)
                    mv.append(v)
                mk.extend(keys[i:])
                mv.extend(values[i:])
                leaf.keys, leaf.values = mk, mv
        else:
            for m in msgs:
                i = bisect.bisect_left(leaf.keys, m.key)
                present = i < len(leaf.keys) and leaf.keys[i] == m.key
                if m.op is MessageOp.INSERT:
                    if present:
                        leaf.values[i] = m.value
                    else:
                        leaf.keys.insert(i, m.key)
                        leaf.values.insert(i, m.value)
                elif m.op is MessageOp.DELETE:
                    if present:
                        del leaf.keys[i]
                        del leaf.values[i]
                else:  # UPSERT
                    if present:
                        leaf.values[i] = leaf.values[i] + m.value
                    else:
                        leaf.keys.insert(i, m.key)
                        leaf.values.insert(i, m.value)
        self._dirty(leaf)
        cap = self.config.leaf_capacity
        if len(leaf.keys) > cap:
            self._split_leaf(parent, idx, leaf)
        elif parent is not None and not leaf.keys:
            self._drop_empty_leaf(parent, idx, leaf)

    def _split_leaf(self, parent: BeNode | None, idx: int, leaf: BeNode) -> None:
        """Split an overfull leaf into ~2/3-full pieces."""
        if OBS.enabled:
            start = self.storage.device.clock
            self._split_leaf_impl(parent, idx, leaf)
            OBS.op_event("betree.split", start, self.storage.device.clock, kind="leaf")
            return
        self._split_leaf_impl(parent, idx, leaf)

    def _split_leaf_impl(self, parent: BeNode | None, idx: int, leaf: BeNode) -> None:
        cap = self.config.leaf_capacity
        pieces = math.ceil(len(leaf.keys) / math.ceil(cap * 2 / 3))
        per = math.ceil(len(leaf.keys) / pieces)
        new_nodes: list[BeNode] = []
        for start in range(per, len(leaf.keys), per):
            piece = self._new_node(is_leaf=True)
            piece.keys = leaf.keys[start : start + per]
            piece.values = leaf.values[start : start + per]
            self._dirty(piece)
            new_nodes.append(piece)
        del leaf.keys[per:]
        del leaf.values[per:]
        self._dirty(leaf)
        if parent is None:
            parent = self._new_node(is_leaf=False)
            parent.children = [leaf.node_id]
            parent.segments = [SegmentBuffer()]
            self.root_id = parent.node_id
            idx = 0
        for j, piece in enumerate(new_nodes):
            parent.pivots.insert(idx + j, piece.keys[0])
            parent.children.insert(idx + j + 1, piece.node_id)
            parent.segments.insert(idx + j + 1, SegmentBuffer())
        self._dirty_pivots(parent)

    def _drop_empty_leaf(self, parent: BeNode, idx: int, leaf: BeNode) -> None:
        """Remove a fully-emptied leaf, keeping at least one child."""
        if len(parent.children) <= 1:
            return  # a lone empty leaf under the root is allowed
        leftover = parent.segments[idx]
        if leftover.count:
            raise TreeError("dropping a leaf whose segment still holds messages")
        del parent.children[idx]
        del parent.segments[idx]
        # Removing child idx removes the separator on its left (or, for the
        # leftmost child, the one on its right): the neighbour absorbs the
        # emptied key range.
        del parent.pivots[idx - 1 if idx > 0 else 0]
        self._free(leaf)
        self._dirty_pivots(parent)

    def _split_internal(self, parent: BeNode | None, idx: int) -> None:
        """Split internal node ``parent.children[idx]`` in half."""
        if OBS.enabled:
            start = self.storage.device.clock
            self._split_internal_impl(parent, idx)
            OBS.op_event(
                "betree.split", start, self.storage.device.clock, kind="internal"
            )
            return
        self._split_internal_impl(parent, idx)

    def _split_internal_impl(self, parent: BeNode | None, idx: int) -> None:
        node = (
            self._get(parent.children[idx]) if parent is not None else self._get(self.root_id)
        )
        mid = len(node.children) // 2
        right = self._new_node(is_leaf=False)
        separator = node.pivots[mid - 1]
        right.pivots = node.pivots[mid:]
        right.children = node.children[mid:]
        right.segments = node.segments[mid:]
        del node.pivots[mid - 1 :]
        del node.children[mid:]
        del node.segments[mid:]
        node.recount()
        right.recount()
        self._dirty(node)
        self._dirty(right)
        if parent is None:
            parent = self._new_node(is_leaf=False)
            parent.children = [node.node_id]
            parent.segments = [SegmentBuffer()]
            self.root_id = parent.node_id
            idx = 0
        parent.pivots.insert(idx, separator)
        parent.children.insert(idx + 1, right.node_id)
        # Partition the parent's pending messages for the split child: keys
        # at or above the separator now route to the right half.
        parent.segments.insert(idx + 1, parent.segments[idx].extract_ge(separator))
        self._dirty_pivots(parent)

    def _maybe_grow_root(self) -> None:
        root = self._get(self.root_id)
        if not root.is_leaf and len(root.children) > self.config.max_children:
            self._split_internal(None, 0)

    # -- queries ----------------------------------------------------------------

    def get(self, key: int) -> Any | None:
        """Point query; returns the value or ``None``."""
        if OBS.enabled:
            start = self.storage.device.clock
            value = self._lookup(key)
            OBS.op_event("betree.query", start, self.storage.device.clock, key=key)
            return value
        return self._lookup(key)

    def _lookup(self, key: int) -> Any | None:
        msgs: list[Message] = []
        node = self._read_root_for_query()
        parent: BeNode | None = None
        idx = 0
        while not node.is_leaf:
            ci = self._child_index(node, key)
            self._read_segment_for_query(node, ci)
            msgs.extend(node.messages_for(ci, key))
            parent, idx = node, ci
            node = self._read_for_query(parent, ci, node.children[ci])
        self._read_leaf_for_point_query(node, key)
        i = bisect.bisect_left(node.keys, key)
        present = i < len(node.keys) and node.keys[i] == key
        base = node.values[i] if present else None
        msgs.sort()
        value, exists = apply_messages(base, present, msgs)
        return value if exists else None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All pairs with ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return []
        entries: dict[int, Any] = {}
        msgs: list[Message] = []
        self._collect_range(self.root_id, lo, hi, entries, msgs)
        msgs.sort()
        for m in msgs:
            if m.op is MessageOp.INSERT:
                entries[m.key] = m.value
            elif m.op is MessageOp.DELETE:
                entries.pop(m.key, None)
            else:
                entries[m.key] = entries.get(m.key, 0) + m.value
        return sorted(entries.items())

    def _collect_range(
        self, node_id: int, lo: int, hi: int, entries: dict, msgs: list[Message]
    ) -> None:
        node = self._read_for_range(node_id)
        if node.is_leaf:
            i = bisect.bisect_left(node.keys, lo)
            j = bisect.bisect_right(node.keys, hi)
            entries.update(zip(node.keys[i:j], node.values[i:j]))
            return
        first = bisect.bisect_right(node.pivots, lo)
        last = bisect.bisect_right(node.pivots, hi)
        for ci in range(first, last + 1):
            for key, key_msgs in node.segments[ci].items():
                if lo <= key <= hi:
                    msgs.extend(key_msgs)
            self._collect_range(node.children[ci], lo, hi, entries, msgs)

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order (applies buffered messages logically)."""
        lo, hi = -(1 << 62), 1 << 62
        yield from self.range(lo, hi)

    def __len__(self) -> int:
        return len(list(self.items()))

    # -- maintenance ---------------------------------------------------------------

    def flush_all(self) -> None:
        """Push every buffered message down to the leaves (test/bench aid)."""
        changed = True
        while changed:
            changed = self._flush_everything(self.root_id)
            self._maybe_grow_root()

    def _flush_everything(self, node_id: int) -> bool:
        node = self._get(node_id)
        if node.is_leaf:
            return False
        changed = False
        while node.buffered_messages() > 0:
            self._flush_child(node, node.fullest_segment())
            changed = True
        for child_id in list(node.children):
            changed |= self._flush_everything(child_id)
        return changed

    def bulk_load(self, pairs: list[tuple[int, Any]]) -> None:
        """Replace the tree's contents with sorted ``pairs`` (empty tree only)."""
        if self._next_seq or len(list(self.items())):
            raise TreeError("bulk_load requires a pristine tree")
        for i in range(1, len(pairs)):
            if pairs[i - 1][0] >= pairs[i][0]:
                raise TreeError("bulk_load requires strictly increasing keys")
        if not pairs:
            return
        self._free(self._get(self.root_id))
        per_leaf = max(2, int(self.config.leaf_capacity * self.config.bulk_fill))
        all_keys = [k for k, _ in pairs]
        all_values = [v for _, v in pairs]
        level: list[tuple[int, int]] = []
        for start in range(0, len(pairs), per_leaf):
            leaf = self._new_node(is_leaf=True)
            leaf.keys = all_keys[start : start + per_leaf]
            leaf.values = all_values[start : start + per_leaf]
            self._dirty(leaf)
            level.append((leaf.keys[0], leaf.node_id))
        self.user_bytes_modified += len(pairs) * self.config.fmt.entry_bytes

        per_internal = max(2, int(self.config.target_fanout * self.config.bulk_fill))
        while len(level) > 1:
            next_level: list[tuple[int, int]] = []
            for start in range(0, len(level), per_internal):
                group = level[start : start + per_internal]
                if len(group) == 1 and next_level:
                    prev = self._get(next_level[-1][1])
                    prev.pivots.append(group[0][0])
                    prev.children.append(group[0][1])
                    prev.segments.append(SegmentBuffer())
                    self._dirty(prev)
                    continue
                node = self._new_node(is_leaf=False)
                node.children = [nid for _, nid in group]
                node.pivots = [first for first, _ in group[1:]]
                node.segments = [SegmentBuffer() for _ in group]
                self._dirty(node)
                next_level.append((group[0][0], node.node_id))
            level = next_level
        self.root_id = level[0][1]

    # -- invariants --------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert ordering, structure and byte budgets."""
        leaf_depths: set[int] = set()
        self._check_node(self.root_id, None, None, 0, leaf_depths)
        if len(leaf_depths) > 1:
            raise TreeError(f"leaves at multiple depths: {sorted(leaf_depths)}")

    def _check_node(
        self, node_id: int, lo: int | None, hi: int | None, depth: int, leaf_depths: set[int]
    ) -> None:
        node = self._get(node_id)
        fmt = self.config.fmt
        if node.is_leaf:
            if len(node.keys) != len(node.values):
                raise TreeError(f"leaf {node_id} keys/values mismatch")
            if len(node.keys) > self.config.leaf_capacity:
                raise TreeError(f"leaf {node_id} over capacity")
            for a, b in zip(node.keys, node.keys[1:]):
                if a >= b:
                    raise TreeError(f"leaf {node_id} keys out of order")
            for k in node.keys:
                if (lo is not None and k < lo) or (hi is not None and k >= hi):
                    raise TreeError(f"leaf {node_id} key {k} outside ({lo}, {hi})")
            leaf_depths.add(depth)
            return
        if len(node.children) != len(node.pivots) + 1:
            raise TreeError(f"node {node_id} pivot/children arity mismatch")
        if len(node.segments) != len(node.children):
            raise TreeError(f"node {node_id} segment/children arity mismatch")
        if node.buffered_count != sum(s.count for s in node.segments):
            raise TreeError(f"node {node_id} buffered_count out of sync")
        if len(node.children) > self.config.max_children:
            raise TreeError(f"node {node_id} fanout {len(node.children)} over max")
        if fmt.buffer_bytes(node.buffered_messages()) > self.config.buffer_budget_bytes:
            raise TreeError(f"node {node_id} buffer over budget")
        for a, b in zip(node.pivots, node.pivots[1:]):
            if a >= b:
                raise TreeError(f"node {node_id} pivots out of order")
        bounds = [lo] + list(node.pivots) + [hi]
        for ci in range(len(node.children)):
            c_lo, c_hi = bounds[ci], bounds[ci + 1]
            for key in node.segments[ci].msgs:
                if (c_lo is not None and key < c_lo) or (c_hi is not None and key >= c_hi):
                    raise TreeError(
                        f"node {node_id} segment {ci} message key {key} outside range"
                    )
                for m in node.segments[ci].msgs[key]:
                    if m.key != key:
                        raise TreeError(f"node {node_id} message filed under wrong key")
            self._check_node(node.children[ci], c_lo, c_hi, depth + 1, leaf_depths)
