"""Bε-tree (paper Sections 3 and 6).

* :class:`~repro.trees.betree.tree.BeTree` — the classic Bε-tree analyzed
  in Lemma 8: internal nodes carry message buffers, IOs move whole nodes.
* :class:`~repro.trees.betree.optimized.OptimizedBeTree` — the Theorem 9
  construction: buffers are organized into per-child contiguous segments
  (each at most ``B/F``), each node's pivots live in its *parent*, and
  leaves are divided into independently-paged basement chunks, so a point
  query reads ``~B/F + F`` bytes per level instead of ``B``.
"""

from repro.trees.betree.messages import Message, MessageOp
from repro.trees.betree.node import BeNode
from repro.trees.betree.tree import BeTree, BeTreeConfig
from repro.trees.betree.optimized import OptimizedBeTree
from repro.trees.betree.rebalance import (
    check_weight_balance,
    rebuild_weight_balance,
)

__all__ = [
    "Message",
    "MessageOp",
    "BeNode",
    "BeTree",
    "BeTreeConfig",
    "OptimizedBeTree",
    "check_weight_balance",
    "rebuild_weight_balance",
]
