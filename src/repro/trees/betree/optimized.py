"""The Theorem 9 Bε-tree: variable-size IOs, simultaneously-optimal ops.

Three refinements over the naive tree of Lemma 8 (paper Section 6):

1. **Per-child buffer segments with a ~B/F cap.**  "We maintain the
   invariant that no more than B/F elements in a node can be destined for
   a particular child, so the cost to read all these elements is only
   1 + alpha*B/F."  A segment exceeding the cap triggers a flush of that
   child, regardless of the node's total buffer occupancy.
2. **Pivots stored in the parent.**  "The pivots for u are stored next to
   the buffer that stores elements destined for u" — so a query performs
   *one* IO per level, reading the relevant segment plus the child's pivot
   set (``~B/F + F`` bytes) instead of the whole node (``B`` bytes).
3. **Basement chunks.**  Leaves are divided into ``~B/F``-byte chunks
   paged independently, so the final leaf access of a point query is also
   small.  This is TokuDB's "basement nodes" design, which the paper says
   this analysis explains.

The paper's third algorithmic ingredient, the weight-balanced rebuild
scheme keeping fanouts within ``(1 ± 1/log F) F``, pins down *lower-order
terms* in the analysis.  Day-to-day rebalancing here is split-based
(fanout within ``[~F/2, 2F]``), which preserves every leading-order cost;
:func:`repro.trees.betree.rebalance.rebuild_weight_balance` implements the
paper's rebuild as an explicit maintenance pass re-establishing the exact
Theorem 9 weight invariant on demand.

IO accounting
-------------
Nodes are plain in-memory structures; device time is charged through
fine-grained cache entries — one per pivot area (``('p', nid)``), buffer
segment (``('s', nid, i)``), and basement chunk (``('b', nid, j)``).  Each
node owns one device extent with *fixed slot offsets* for its components,
so components of one node are contiguous.  Charging granularity follows
what a real implementation would issue:

* query paths read exactly one component (one setup + its bytes);
* whole-node rewrites (flush targets, splits, leaf application) are
  charged as a *single* batched IO — one setup plus the bytes of whatever
  components were missing (read) and one setup plus the node's occupied
  bytes (write), exactly like the naive tree's node IOs — rather than one
  seek per chunk, which no real system would pay.

The LRU cache pages components in and out independently, which is the
"sub-nodes paged in and out independently" behaviour the paper attributes
to TokuDB.

Construction flags make the E9 ablation possible:

* ``segmented_io=False`` — charge like the naive tree (whole nodes).
* ``segmented_io=True, pivots_in_parent=False`` — partial reads, but each
  level needs two IOs (the node's own pivot area, then the segment).
* ``segmented_io=True, pivots_in_parent=True`` — the full Theorem 9
  design: one IO per level of ``1 + alpha*(B/F + F)``.
"""

from __future__ import annotations

import bisect
import math
from typing import Hashable

from repro.errors import CacheError, ConfigurationError
from repro.storage.stack import StorageStack
from repro.trees.betree.messages import Message, MessageOp
from repro.trees.betree.node import BeNode
from repro.trees.betree.tree import BeTree, BeTreeConfig

_GRAIN = 512  # charged-size granularity in bytes


def _round_grain(nbytes: int) -> int:
    return max(_GRAIN, ((nbytes + _GRAIN - 1) // _GRAIN) * _GRAIN)


class OptimizedBeTree(BeTree):
    """Bε-tree with per-child segments, pivots-in-parent and basements."""

    def __init__(
        self,
        storage: StorageStack,
        config: BeTreeConfig | None = None,
        *,
        segmented_io: bool = True,
        pivots_in_parent: bool = True,
    ) -> None:
        if pivots_in_parent and not segmented_io:
            raise ConfigurationError(
                "pivots_in_parent requires segmented_io (they share the segment read)"
            )
        self.segmented_io = bool(segmented_io)
        self.pivots_in_parent = bool(pivots_in_parent)
        self._nodes: dict[int, BeNode] = {}
        self._base: dict[int, int] = {}      # node id -> extent base offset
        self._parts: dict[int, list[Hashable]] = {}  # node id -> component ids
        self._cache_geometry(config or BeTreeConfig())
        super().__init__(storage, config)
        # Bound once: the insert hot path calls this per message, and the
        # storage stack never swaps its cache object out.
        self._access = storage.cache.access

    def _cache_geometry(self, config: BeTreeConfig) -> None:
        """Flatten the slot-geometry property chains into plain ints.

        The insert path recomputes segment sizes on every message; chasing
        ``config.fmt`` properties each time dominated the profile, and every
        value here is a pure function of the (frozen) config.
        """
        fmt = config.fmt
        self._msg_bytes = fmt.message_bytes
        self._key_bytes = fmt.key_bytes
        self._pivot_bytes = fmt.pivot_bytes
        self._entry_bytes = fmt.entry_bytes
        self._header_bytes = fmt.node_header_bytes
        max_children = config.max_children
        self._pivot_slot = fmt.node_header_bytes + max_children * fmt.pivot_bytes
        self._seg_slot = max(
            fmt.message_bytes, (config.node_bytes - self._pivot_slot) // max_children
        )
        self._basement = max(1, config.leaf_capacity // config.target_fanout)
        self._chunk_slot = fmt.node_header_bytes + self._basement * fmt.entry_bytes
        self._max_children = config.max_children

    # -- slot geometry ---------------------------------------------------------

    @property
    def segment_cap_bytes(self) -> int:
        """Theorem 9's per-child buffer cap (one fixed slot, ``~B/F``)."""
        return self._seg_slot

    @property
    def _pivot_slot_bytes(self) -> int:
        return self._pivot_slot

    @property
    def _segment_slot_bytes(self) -> int:
        return self._seg_slot

    @property
    def basement_entries(self) -> int:
        """Entries per basement chunk (``~leaf_capacity / F``)."""
        return self._basement

    @property
    def _chunk_slot_bytes(self) -> int:
        return self._chunk_slot

    #: Extent over-allocation factor: leaves can transiently exceed capacity
    #: between a flush application and the split it triggers.
    _EXTENT_SLACK = 2

    def _segment_overflow_bytes(self) -> int:
        return self.segment_cap_bytes

    # -- fused insert fast path ------------------------------------------------

    def _put(self, msg) -> None:
        """One-frame insert hot path; behaviorally identical to the base.

        The base ``_put`` spends most of its time in call overhead:
        ``_get`` → ``_child_index`` → ``add_message`` → ``_dirty_segment``
        → ``_segment_read_bytes`` → ``_round_grain`` → ``_touch`` →
        ``access``, each a Python frame.  This override performs the same
        dict/bisect/arithmetic steps inline, then defers to the shared
        flush/split machinery the moment anything overflows — so cache
        traffic, device IO and tree state match the base path exactly.
        """
        if not self.segmented_io:
            super()._put(msg)
            return
        self.user_bytes_modified += self._entry_bytes
        root = self._nodes[self.root_id]
        if root.is_leaf:
            self._apply_to_leaf(None, 0, [msg])
            return
        key = msg.key
        idx = bisect.bisect_right(root.pivots, key)
        seg = root.segments[idx]
        lst = seg.msgs.get(key)
        if lst is None:
            seg.msgs[key] = [msg]
        else:
            lst.append(msg)
        count = seg.count + 1
        seg.count = count
        root.buffered_count += 1
        # _dirty_segment, inlined: charged bytes = messages (+ child pivots).
        nbytes = count * self._msg_bytes
        if self.pivots_in_parent:
            child = self._nodes[root.children[idx]]
            if child.is_leaf:
                per = self._basement
                nbytes += (-(-len(child.keys) // per) or 1) * self._key_bytes
            else:
                nbytes += self._header_bytes + len(child.children) * self._pivot_bytes
        try:
            self._access(
                ("s", root.node_id, idx),
                ((nbytes + _GRAIN - 1) // _GRAIN) * _GRAIN,
                dirty=True,
            )
        except CacheError:
            cid = ("s", root.node_id, idx)
            raise CacheError(f"component {cid!r} was never created") from None
        budget = self._budget_msgs
        if budget is None:
            budget = self._ensure_thresholds()
        if root.buffered_count > budget or count > self._seg_cap_msgs:
            self._flush_overflows(root)
        if len(root.children) > self._max_children:
            self._split_internal(None, 0)

    def put_many(self, pairs) -> None:
        """Batched inserts: the fused ``_put`` body run in one loop frame.

        Same contract as the base ``put_many`` — accounting identical to a
        serial insert loop — with the per-message hot path inlined and its
        ``self`` lookups hoisted.  The root reference is refreshed only
        after the paths that can replace it (leaf application, root split).
        """
        if not self.segmented_io:
            super().put_many(pairs)
            return
        make = Message
        op = MessageOp.INSERT
        access = self._access
        nodes = self._nodes
        entry_bytes = self._entry_bytes
        msg_bytes = self._msg_bytes
        key_bytes = self._key_bytes
        pivot_bytes = self._pivot_bytes
        header_bytes = self._header_bytes
        basement = self._basement
        budget = self._budget_msgs
        seg_cap = self._seg_cap_msgs
        max_children = self._max_children
        pivots_in_parent = self.pivots_in_parent
        bisect_right = bisect.bisect_right
        seq = self._next_seq
        root = nodes[self.root_id]
        for key, value in pairs:
            seq += 1
            self._next_seq = seq
            self.user_bytes_modified += entry_bytes
            if root.is_leaf:
                self._apply_to_leaf(None, 0, [make(seq, op, key, value)])
                root = nodes[self.root_id]
                seq = self._next_seq
                continue
            idx = bisect_right(root.pivots, key)
            seg = root.segments[idx]
            lst = seg.msgs.get(key)
            if lst is None:
                seg.msgs[key] = [make(seq, op, key, value)]
            else:
                lst.append(make(seq, op, key, value))
            count = seg.count + 1
            seg.count = count
            root.buffered_count += 1
            nbytes = count * msg_bytes
            if pivots_in_parent:
                child = nodes[root.children[idx]]
                if child.is_leaf:
                    # ceil(len/basement) is >= 1 for non-empty leaves; `or 1`
                    # covers the transient-empty case without a max() call.
                    nbytes += (-(-len(child.keys) // basement) or 1) * key_bytes
                else:
                    nbytes += header_bytes + len(child.children) * pivot_bytes
            try:
                # nbytes >= message_bytes > 0, so the rounded size is always
                # >= _GRAIN and _round_grain's max() clamp is redundant here.
                access(
                    ("s", root.node_id, idx),
                    ((nbytes + _GRAIN - 1) // _GRAIN) * _GRAIN,
                    True,
                )
            except CacheError:
                cid = ("s", root.node_id, idx)
                raise CacheError(f"component {cid!r} was never created") from None
            if budget is None:
                budget = self._ensure_thresholds()
                seg_cap = self._seg_cap_msgs
            if root.buffered_count > budget or count > seg_cap:
                self._flush_overflows(root)
                if len(root.children) > max_children:
                    self._split_internal(None, 0)
                root = nodes[self.root_id]
                seq = self._next_seq

    def _chunk_count(self, leaf: BeNode) -> int:
        per = self._basement
        return max(1, -(-len(leaf.keys) // per))

    def _chunk_bytes(self, leaf: BeNode, j: int) -> int:
        per = self._basement
        n = max(0, min(len(leaf.keys) - j * per, per))
        return self._header_bytes + n * self._entry_bytes

    def _segment_read_bytes(self, node: BeNode, idx: int) -> int:
        """Charged size of segment ``idx``: messages (+ child pivots)."""
        nbytes = node.segments[idx].count * self._msg_bytes
        if self.pivots_in_parent:
            child = self._nodes[node.children[idx]]
            if child.is_leaf:
                # The parent stores the leaf's basement-chunk index instead.
                per = self._basement
                nbytes += max(1, -(-len(child.keys) // per)) * self._key_bytes
            else:
                nbytes += self._header_bytes + len(child.children) * self._pivot_bytes
        return nbytes

    def _pivot_area_bytes(self, node: BeNode) -> int:
        return self.config.fmt.internal_bytes(len(node.children))

    def _component_plan(self, node: BeNode) -> list[tuple[Hashable, int, int]]:
        """``(component id, slot offset, occupied bytes)`` for the node."""
        nid = node.node_id
        base = self._base[nid]
        if node.is_leaf:
            slot = self._chunk_slot_bytes
            return [
                (("b", nid, j), base + j * slot, self._chunk_bytes(node, j))
                for j in range(self._chunk_count(node))
            ]
        plan: list[tuple[Hashable, int, int]] = [
            (("p", nid), base, self._pivot_area_bytes(node))
        ]
        seg_base = base + self._pivot_slot_bytes
        slot = self._segment_slot_bytes
        plan.extend(
            (("s", nid, i), seg_base + i * slot, self._segment_read_bytes(node, i))
            for i in range(len(node.segments))
        )
        return plan

    def _slot_of(self, cid: Hashable) -> int:
        """Slot offset of a component id (without building the full plan)."""
        kind, nid = cid[0], cid[1]
        base = self._base[nid]
        if kind == "b":
            return base + cid[2] * self._chunk_slot
        if kind == "p":
            return base
        return base + self._pivot_slot + cid[2] * self._seg_slot

    # -- charging primitives -------------------------------------------------------

    def _touch(self, cid: Hashable, nbytes: int | None = None, *, dirty: bool) -> None:
        """Access one component: read charge on miss, resize, optional dirty.

        One :meth:`~repro.storage.cache.BufferCache.access` call — component
        slots are fixed, so a resize keeps the registered offset and the
        cache can do the whole contains/get/resize/dirty sequence on a
        single index lookup.
        """
        try:
            self._access(
                cid,
                _round_grain(nbytes) if nbytes is not None else None,
                dirty=dirty,
            )
        except CacheError:
            raise CacheError(f"component {cid!r} was never created") from None

    def _rewrite_node(self, node: BeNode) -> None:
        """Whole-node rewrite: batched read of missing parts + one write.

        This is the charging model of a real flush/split: the node is read
        (what is not already cached), modified, and written back with one
        large IO each way — not one seek per chunk.
        """
        cache = self.storage.cache
        plan = self._component_plan(node)
        nid = node.node_id
        new_ids = [cid for cid, _, _ in plan]
        old_ids = self._parts.get(nid, [])
        if old_ids != new_ids:
            keep = set(new_ids)
            for cid in old_ids:
                if cid not in keep:
                    # Components live in slots of the node's own extent;
                    # dropping one releases no allocator space.
                    cache.delete(cid)
        contains = cache.contains
        missing = 0
        total = 0
        items = []
        for cid, offset, nb in plan:
            r = _round_grain(nb)
            total += r
            if not contains(cid):
                missing += r
            items.append((cid, offset, r))
        base = self._base[nid]
        if missing:
            self.storage.device.read(base, missing)
        self.storage.device.write(base, total)
        # Components are now resident and *clean* — the write-back just
        # happened as the batched write above.
        cache.readmit_clean(items)
        self._parts[nid] = new_ids

    # -- storage hooks overridden from BeTree ---------------------------------------

    def _create_storage(self, node: BeNode) -> None:
        if not self.segmented_io:
            super()._create_storage(node)
            return
        nid = node.node_id
        self._nodes[nid] = node
        extent = self.config.node_bytes * self._EXTENT_SLACK
        self._base[nid] = self.storage.allocator.alloc(extent)
        self._parts[nid] = []
        cache = self.storage.cache
        for cid, offset, nb in self._component_plan(node):
            cache.admit(cid, None, offset, _round_grain(nb), dirty=True)
            self._parts[nid].append(cid)

    def _get(self, node_id: int) -> BeNode:
        if not self.segmented_io:
            return super()._get(node_id)
        return self._nodes[node_id]

    def _dirty(self, node: BeNode) -> None:
        if not self.segmented_io:
            super()._dirty(node)
            return
        self._rewrite_node(node)

    def _dirty_segment(self, node: BeNode, idx: int) -> None:
        if not self.segmented_io:
            super()._dirty_segment(node, idx)
            return
        self._touch(("s", node.node_id, idx), self._segment_read_bytes(node, idx), dirty=True)

    def _dirty_pivots(self, node: BeNode) -> None:
        if not self.segmented_io:
            super()._dirty_pivots(node)
            return
        # Pivot/segment arities changed: component positions shifted; a
        # split rewrites the node in a real system too.
        self._rewrite_node(node)

    def _free(self, node: BeNode) -> None:
        if not self.segmented_io:
            super()._free(node)
            return
        nid = node.node_id
        for cid in self._parts.pop(nid, []):
            self.storage.cache.delete(cid)
        self.storage.allocator.free(self._base.pop(nid), self.config.node_bytes * self._EXTENT_SLACK)
        del self._nodes[nid]

    # -- query-path hooks -------------------------------------------------------------

    def _read_root_for_query(self) -> BeNode:
        if not self.segmented_io:
            return super()._read_root_for_query()
        root = self._nodes[self.root_id]
        if not root.is_leaf:
            # The root's pivots have no parent to live in; they are a small
            # read of their own (and stay LRU-resident in practice).
            self._touch(("p", root.node_id), dirty=False)
        return root

    def _read_segment_for_query(self, node: BeNode, idx: int) -> None:
        if not self.segmented_io:
            return
        self._touch(("s", node.node_id, idx), dirty=False)

    def _read_for_query(self, parent: BeNode | None, idx: int, node_id: int) -> BeNode:
        if not self.segmented_io:
            return super()._read_for_query(parent, idx, node_id)
        node = self._nodes[node_id]
        if not self.pivots_in_parent and not node.is_leaf:
            # Without the Theorem 9 pivot placement, descending costs an
            # extra IO per level for the node's own pivot area.
            self._touch(("p", node_id), dirty=False)
        return node

    def _read_leaf_for_point_query(self, leaf: BeNode, key: int) -> None:
        if not self.segmented_io:
            return
        i = bisect.bisect_left(leaf.keys, key)
        j = min(i // self.basement_entries, self._chunk_count(leaf) - 1)
        self._touch(("b", leaf.node_id, j), dirty=False)

    def _read_for_range(self, node_id: int) -> BeNode:
        if not self.segmented_io:
            return super()._read_for_range(node_id)
        node = self._nodes[node_id]
        cache = self.storage.cache
        # A range scan streams the whole node: one batched read of whatever
        # is missing, then everything is resident (clean-admitted).
        plan = self._component_plan(node)
        missing = sum(
            _round_grain(nb) for cid, _, nb in plan if not cache.contains(cid)
        )
        if missing:
            self.storage.device.read(self._base[node_id], missing)
        for cid, offset, nb in plan:
            if not cache.contains(cid):
                cache.admit(cid, None, offset, _round_grain(nb), dirty=False)
        return node
