"""Bε-tree node representation.

A leaf is exactly a B-tree leaf: sorted ``keys`` with parallel ``values``.

An internal node has ``pivots`` / ``children`` like a B-tree node plus a
message buffer.  The buffer is organized *per child* from the start
(``segments[i]`` holds the messages destined for ``children[i]``): the
naive tree of Lemma 8 still moves whole nodes per IO, so the segmentation
is invisible to it, while the Theorem 9 tree charges IO per segment.

Each segment is a :class:`SegmentBuffer` — a per-key message map with an
incrementally-maintained count, so overflow checks are O(fanout) per
operation instead of O(buffered messages).
"""

from __future__ import annotations

from typing import Any, Iterator

from operator import attrgetter

from repro.trees.betree.messages import Message
from repro.trees.sizing import EntryFormat

_by_seq = attrgetter("seq")


class SegmentBuffer:
    """Messages destined for one child, grouped per key, with a live count."""

    __slots__ = ("msgs", "count")

    def __init__(self) -> None:
        self.msgs: dict[int, list[Message]] = {}
        self.count = 0

    def add(self, message: Message) -> None:
        """Append one message (arrival order within a key = seq order)."""
        lst = self.msgs.get(message.key)
        if lst is None:
            self.msgs[message.key] = [message]
        else:
            lst.append(message)
        self.count += 1

    def for_key(self, key: int) -> list[Message]:
        """Messages buffered for ``key``, in seq order."""
        return self.msgs.get(key, [])

    def take_sorted(self) -> list[Message]:
        """Drain the buffer; returns all messages sequence-sorted."""
        out = [m for msgs in self.msgs.values() for m in msgs]
        # Sequence numbers are globally unique, so sorting on seq alone
        # yields the same order as full Message comparison — without the
        # tuple-building dataclass __lt__ per comparison.
        out.sort(key=_by_seq)
        self.msgs = {}
        self.count = 0
        return out

    def extract_ge(self, separator: int) -> "SegmentBuffer":
        """Split off all messages with ``key >= separator`` (node splits)."""
        right = SegmentBuffer()
        move = [k for k in self.msgs if k >= separator]
        for k in move:
            lst = self.msgs.pop(k)
            right.msgs[k] = lst
            right.count += len(lst)
            self.count -= len(lst)
        return right

    def items(self) -> Iterator[tuple[int, list[Message]]]:
        """Per-key message lists."""
        return iter(self.msgs.items())

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SegmentBuffer(keys={len(self.msgs)}, count={self.count})"


class BeNode:
    """One Bε-tree node (leaf or internal)."""

    __slots__ = (
        "node_id", "is_leaf", "keys", "values", "pivots", "children",
        "segments", "buffered_count",
    )

    def __init__(self, node_id: int, is_leaf: bool) -> None:
        self.node_id = node_id
        self.is_leaf = is_leaf
        self.keys: list[int] = []
        self.values: list[Any] = []
        self.pivots: list[int] = []       # len == len(children) - 1
        self.children: list[int] = []
        self.segments: list[SegmentBuffer] = []  # len == len(children)
        # Running total of messages across all segments.  add_message /
        # take_segment maintain it incrementally; code that rearranges the
        # ``segments`` list wholesale (splits) must call recount().
        self.buffered_count = 0

    # -- segment accounting ----------------------------------------------------

    def segment_message_count(self, idx: int) -> int:
        """Number of messages buffered for child ``idx``."""
        return self.segments[idx].count

    def buffered_messages(self) -> int:
        """Total messages buffered in this node (O(1))."""
        return self.buffered_count

    def recount(self) -> None:
        """Recompute ``buffered_count`` after direct ``segments`` surgery."""
        self.buffered_count = sum(s.count for s in self.segments)

    def segment_bytes(self, idx: int, fmt: EntryFormat) -> int:
        """Byte footprint of child ``idx``'s segment."""
        return fmt.buffer_bytes(self.segments[idx].count)

    def nbytes(self, fmt: EntryFormat) -> int:
        """Whole-node byte footprint (leaf entries or pivots + buffer)."""
        if self.is_leaf:
            return fmt.leaf_bytes(len(self.keys))
        return (
            fmt.internal_bytes(len(self.children))
            + fmt.buffer_bytes(self.buffered_messages())
        )

    def fullest_segment(self) -> int:
        """Index of the child with the most pending messages.

        This is the paper's flush policy: "Typically v is chosen to be the
        child with the most pending messages."
        """
        return max(range(len(self.segments)), key=lambda i: self.segments[i].count)

    def add_message(self, idx: int, message: Message) -> None:
        """Buffer ``message`` for child ``idx``."""
        self.segments[idx].add(message)
        self.buffered_count += 1

    def take_segment(self, idx: int) -> list[Message]:
        """Remove and return child ``idx``'s messages, sequence-sorted."""
        self.buffered_count -= self.segments[idx].count
        return self.segments[idx].take_sorted()

    def messages_for(self, idx: int, key: int) -> list[Message]:
        """Messages buffered for ``key`` in child ``idx``'s segment (seq order)."""
        return self.segments[idx].for_key(key)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        if self.is_leaf:
            return f"BeNode(id={self.node_id}, leaf, n={len(self.keys)})"
        return (
            f"BeNode(id={self.node_id}, internal, fanout={len(self.children)}, "
            f"buffered={self.buffered_messages()})"
        )
