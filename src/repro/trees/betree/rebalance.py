"""Theorem 9's weight-balanced rebuild scheme.

    "Define the weight of a node to be the number of leaves in the node's
    subtree.  We maintain the following weight-balanced invariant.  Each
    nonroot node u at height h satisfies

        F^h (1 - 1/log F) <= weight(u) <= F^h (1 + 1/log F).

    The root just maintains the upper bound on the weight, but not the
    lower bound.  Whenever a node u gets out of balance ... we rebuild the
    subtree rooted at u's parent v from scratch, reestablishing the
    balancing invariant."

The paper uses this scheme to pin the fanout to ``(1 ± O(1/log F)) F`` so
the query bound holds *up to lower-order terms*.  The split-based trees
keep fanout within ``[~F/2, 2F]``, which preserves every leading-order
cost; this module supplies the tighter maintenance for completeness and
for the invariant tests.

The entry point, :func:`rebuild_weight_balance`, scans a Bε-tree for the
deepest out-of-balance node and rebuilds its parent's subtree: all leaf
entries below the parent are collected with every pending buffered message
applied, then re-cut into a perfectly balanced subtree with exact target
fanout.  Amortization (the paper charges ``O(alpha log F)`` per update) is
the caller's business — tests and maintenance loops invoke it explicitly.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.errors import TreeError
from repro.trees.betree.node import BeNode, SegmentBuffer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.trees.betree.tree import BeTree


def weight_bounds(fanout: int, height: int) -> tuple[float, float]:
    """The Theorem 9 weight window for a nonroot node at ``height``.

    Height 0 is a leaf (weight exactly 1, trivially balanced); the bounds
    apply to internal nodes.
    """
    if fanout < 2:
        raise TreeError(f"fanout must be >= 2, got {fanout}")
    slack = 1.0 / math.log2(fanout) if fanout > 2 else 0.9
    target = float(fanout**height)
    return target * (1.0 - slack), target * (1.0 + slack)


def node_weights(tree: "BeTree") -> dict[int, tuple[int, int]]:
    """``node_id -> (height, weight)`` for every node of the tree."""
    out: dict[int, tuple[int, int]] = {}

    def walk(nid: int) -> tuple[int, int]:
        node = tree._get(nid)
        if node.is_leaf:
            out[nid] = (0, 1)
            return 0, 1
        height, weight = 0, 0
        for child in node.children:
            h, w = walk(child)
            height = max(height, h + 1)
            weight += w
        out[nid] = (height, weight)
        return height, weight

    walk(tree.root_id)
    return out


def find_unbalanced(tree: "BeTree") -> int | None:
    """Id of some out-of-balance nonroot node, or ``None`` if balanced.

    The root is only checked against the upper bound, per the paper.
    """
    fanout = tree.config.target_fanout
    weights = node_weights(tree)
    for nid, (height, weight) in weights.items():
        if height == 0:
            continue
        lo, hi = weight_bounds(fanout, height)
        if nid == tree.root_id:
            if weight > hi:
                return nid
            continue
        if not lo <= weight <= hi:
            return nid
    return None


def _parent_of(tree: "BeTree", target: int) -> int | None:
    """Id of ``target``'s parent (``None`` for the root)."""

    def walk(nid: int) -> int | None:
        node = tree._get(nid)
        if node.is_leaf:
            return None
        for child in node.children:
            if child == target:
                return nid
            found = walk(child)
            if found is not None:
                return found
        return None

    return None if target == tree.root_id else walk(tree.root_id)


def _collect_subtree(tree: "BeTree", nid: int) -> list[tuple[int, object]]:
    """All live entries below ``nid`` with pending messages applied."""
    lo, hi = -(1 << 62), (1 << 62)
    entries: dict[int, object] = {}
    msgs: list = []
    tree._collect_range(nid, lo, hi, entries, msgs)
    msgs.sort()
    from repro.trees.betree.messages import MessageOp

    for m in msgs:
        if m.op is MessageOp.INSERT:
            entries[m.key] = m.value
        elif m.op is MessageOp.DELETE:
            entries.pop(m.key, None)
        else:
            entries[m.key] = entries.get(m.key, 0) + m.value
    return sorted(entries.items())


def _free_subtree(tree: "BeTree", nid: int) -> None:
    node = tree._get(nid)
    if not node.is_leaf:
        for child in list(node.children):
            _free_subtree(tree, child)
    tree._free(node)


def _subtree_height_for(fanout: int, n_leaves: int) -> int:
    """Height of a weight-balanced tree over ``n_leaves`` (leaf = 0).

    The smallest height whose *upper* weight bound admits ``n_leaves`` —
    the root is exempt from the lower bound, and choosing one level more
    would force children below their lower bounds (e.g. 67 leaves at
    F = 8 must be a height-2 tree with ~7 children, not a height-3 one
    with two 34-leaf children).
    """
    height = 0
    while weight_bounds(fanout, height)[1] < n_leaves:
        height += 1
    return height


def _build_balanced(tree: "BeTree", pairs: list[tuple[int, object]]) -> int:
    """Build a weight-balanced subtree over ``pairs``; returns its root id.

    Entries are cut into near-equal leaves, then the leaf range is split
    top-down: at height ``h`` a node takes the smallest child count that
    keeps each child's weight at most ``F^(h-1) (1 + 1/log F)``; near-equal
    splitting then keeps it above the lower bound too.  The subtree's own
    root may sit below its level's lower bound (the paper exempts the root).
    """
    assert pairs, "cannot build a balanced subtree over nothing"
    fanout = tree.config.target_fanout
    slack = 1.0 / math.log2(fanout) if fanout > 2 else 0.9
    cap = max(2, int(tree.config.leaf_capacity * tree.config.bulk_fill))
    n_leaves = max(1, math.ceil(len(pairs) / cap))

    # Near-equal leaf cuts.
    base, extra = divmod(len(pairs), n_leaves)
    leaves: list[tuple[int, int]] = []  # (first_key, node_id)
    pos = 0
    for i in range(n_leaves):
        take = base + (1 if i < extra else 0)
        chunk = pairs[pos : pos + take]
        pos += take
        leaf = tree._new_node(is_leaf=True)
        leaf.keys = [k for k, _ in chunk]
        leaf.values = [v for _, v in chunk]
        tree._dirty(leaf)
        leaves.append((leaf.keys[0], leaf.node_id))

    def build(lo: int, hi: int, height: int) -> int:
        n = hi - lo
        if height == 0:
            assert n == 1
            return leaves[lo][1]
        target = fanout ** (height - 1)
        # Child weights are integral leaf counts, so the per-child maximum
        # floors (at height 1 this forces one leaf per child).
        max_child = max(1, math.floor(target * (1.0 + slack)))
        g = max(2, math.ceil(n / max_child))
        g = min(g, n)
        node = tree._new_node(is_leaf=False)
        child_base, child_extra = divmod(n, g)
        start = lo
        for i in range(g):
            take = child_base + (1 if i < child_extra else 0)
            child_id = build(start, start + take, height - 1)
            node.children.append(child_id)
            if i > 0:
                node.pivots.append(leaves[start][0])
            node.segments.append(SegmentBuffer())
            start += take
        tree._dirty(node)
        return node.node_id

    if n_leaves == 1:
        return leaves[0][1]
    return build(0, n_leaves, _subtree_height_for(fanout, n_leaves))


def _predicted_height(tree: "BeTree", n_pairs: int) -> int:
    """Height (leaf = 0) of the subtree :func:`_build_balanced` would make."""
    cap = max(2, int(tree.config.leaf_capacity * tree.config.bulk_fill))
    n_leaves = max(1, math.ceil(n_pairs / cap))
    return _subtree_height_for(tree.config.target_fanout, n_leaves)


def rebuild_weight_balance(tree: "BeTree", *, max_rebuilds: int = 64) -> int:
    """Rebuild until the Theorem 9 weight invariant holds; returns rebuilds.

    Each round finds one out-of-balance node ``u`` and rebuilds the subtree
    of ``u``'s parent from scratch, exactly as the paper prescribes.  When
    the rebuilt subtree would change height (global leaf depth must stay
    uniform) — or when ``u`` is the root or a root child — the whole tree
    is rebuilt instead.
    """
    rebuilds = 0
    while rebuilds < max_rebuilds:
        bad = find_unbalanced(tree)
        if bad is None:
            return rebuilds
        parent = _parent_of(tree, bad)
        target = parent if parent is not None else tree.root_id
        grandparent = _parent_of(tree, target) if target != tree.root_id else None

        if grandparent is not None:
            old_height = node_weights(tree)[target][0]
            pairs = _collect_subtree(tree, target)
            if pairs and _predicted_height(tree, len(pairs)) == old_height:
                gp = tree._get(grandparent)
                idx = gp.children.index(target)
                # Messages buffered above stay above: they route by pivots.
                _free_subtree(tree, target)
                gp.children[idx] = _build_balanced(tree, pairs)
                tree._dirty_pivots(gp)
                rebuilds += 1
                continue
            # Height would change: escalate to a whole-tree rebuild.

        pairs = _collect_subtree(tree, tree.root_id)
        _free_subtree(tree, tree.root_id)
        if not pairs:
            tree.root_id = tree._new_node(is_leaf=True).node_id
        else:
            tree.root_id = _build_balanced(tree, pairs)
        rebuilds += 1
    raise TreeError(f"weight balance did not converge after {max_rebuilds} rebuilds")


def check_weight_balance(tree: "BeTree") -> None:
    """Assert the Theorem 9 invariant (used by tests after maintenance)."""
    bad = find_unbalanced(tree)
    if bad is not None:
        weights = node_weights(tree)
        h, w = weights[bad]
        lo, hi = weight_bounds(tree.config.target_fanout, h)
        raise TreeError(
            f"node {bad} at height {h} has weight {w}, outside [{lo:.1f}, {hi:.1f}]"
        )
