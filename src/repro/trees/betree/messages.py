"""Bε-tree messages.

"Modifications to the dictionary are encoded as messages, such as an
insertion or a so-called tombstone message for deletion" (paper Section 3).
Messages carry a global sequence number so that, wherever they currently
sit in the tree, their effects can be replayed in operation order.

Upserts are modeled as additive deltas on integer values — enough to
exercise the read-modify-write-free code path the paper's Table 3 mentions
("inserts, deletes, and upserts") while keeping values comparable in tests.
"""

from __future__ import annotations

from enum import IntEnum
from typing import Any

from repro.errors import TreeError


class MessageOp(IntEnum):
    """Message opcodes."""

    INSERT = 0   # set key -> value
    DELETE = 1   # tombstone: remove key
    UPSERT = 2   # add delta to the current value (0 base if absent)


class Message:
    """One buffered mutation.  Ordered by sequence number.

    A hand-rolled ``__slots__`` class rather than a dataclass: the insert
    hot path constructs one per operation, and the dataclass ``__init__``
    (plus frozen-instance ``__setattr__``) tripled the cost.  Comparison,
    equality, hashing and repr match the former
    ``@dataclass(frozen=True, order=True)`` field-tuple semantics exactly.
    """

    __slots__ = ("seq", "op", "key", "value")

    def __init__(self, seq: int, op: MessageOp, key: int, value: Any = None) -> None:
        self.seq = seq
        self.op = op
        self.key = key
        self.value = value

    def _astuple(self) -> tuple:
        return (self.seq, self.op, self.key, self.value)

    def __eq__(self, other: object) -> bool:
        if other.__class__ is Message:
            return self._astuple() == other._astuple()
        return NotImplemented

    def __lt__(self, other: "Message") -> bool:
        return self._astuple() < other._astuple()

    def __le__(self, other: "Message") -> bool:
        return self._astuple() <= other._astuple()

    def __gt__(self, other: "Message") -> bool:
        return self._astuple() > other._astuple()

    def __ge__(self, other: "Message") -> bool:
        return self._astuple() >= other._astuple()

    def __hash__(self) -> int:
        return hash(self._astuple())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Message(seq={self.seq!r}, op={self.op!r}, "
            f"key={self.key!r}, value={self.value!r})"
        )


def apply_messages(base: Any, present: bool, messages: list[Message]) -> tuple[Any, bool]:
    """Replay ``messages`` (must be seq-sorted) over an optional base value.

    Returns ``(value, present)`` after all messages.
    """
    value, exists = base, present
    last_seq = None
    for m in messages:
        if last_seq is not None and m.seq < last_seq:
            raise TreeError("messages must be applied in sequence order")
        last_seq = m.seq
        if m.op is MessageOp.INSERT:
            value, exists = m.value, True
        elif m.op is MessageOp.DELETE:
            value, exists = None, False
        elif m.op is MessageOp.UPSERT:
            value = (value if exists else 0) + m.value
            exists = True
        else:  # pragma: no cover - IntEnum is closed
            raise TreeError(f"unknown message op {m.op!r}")
    return value, exists
