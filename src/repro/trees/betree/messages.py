"""Bε-tree messages.

"Modifications to the dictionary are encoded as messages, such as an
insertion or a so-called tombstone message for deletion" (paper Section 3).
Messages carry a global sequence number so that, wherever they currently
sit in the tree, their effects can be replayed in operation order.

Upserts are modeled as additive deltas on integer values — enough to
exercise the read-modify-write-free code path the paper's Table 3 mentions
("inserts, deletes, and upserts") while keeping values comparable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import IntEnum
from typing import Any

from repro.errors import TreeError


class MessageOp(IntEnum):
    """Message opcodes."""

    INSERT = 0   # set key -> value
    DELETE = 1   # tombstone: remove key
    UPSERT = 2   # add delta to the current value (0 base if absent)


@dataclass(frozen=True, order=True)
class Message:
    """One buffered mutation.  Ordered by sequence number."""

    seq: int
    op: MessageOp
    key: int
    value: Any = None


def apply_messages(base: Any, present: bool, messages: list[Message]) -> tuple[Any, bool]:
    """Replay ``messages`` (must be seq-sorted) over an optional base value.

    Returns ``(value, present)`` after all messages.
    """
    value, exists = base, present
    last_seq = None
    for m in messages:
        if last_seq is not None and m.seq < last_seq:
            raise TreeError("messages must be applied in sequence order")
        last_seq = m.seq
        if m.op is MessageOp.INSERT:
            value, exists = m.value, True
        elif m.op is MessageOp.DELETE:
            value, exists = None, False
        elif m.op is MessageOp.UPSERT:
            value = (value if exists else 0) + m.value
            exists = True
        else:  # pragma: no cover - IntEnum is closed
            raise TreeError(f"unknown message op {m.op!r}")
    return value, exists
