"""External-memory dictionaries: B-tree, Bε-tree, and an LSM baseline.

All dictionaries share the conventions in :mod:`repro.trees.sizing`
(fixed-width keys and values, byte-budgeted nodes) and run on a
:class:`~repro.storage.stack.StorageStack`, so their only observable cost
is simulated device time.

* :mod:`repro.trees.btree` — the classic B-tree (paper Section 3/5),
  plus the Section 8 van Emde Boas / PDAM machinery.
* :mod:`repro.trees.betree` — the Bε-tree (Section 3/6): naive
  whole-node-IO variant and the Theorem 9 optimized variant with
  per-child buffer segments and pivots-in-parent.
* :mod:`repro.trees.lsm` — a leveled LSM-tree baseline (the third
  write-optimized family the paper's introduction discusses).
"""

from repro.trees.sizing import EntryFormat
from repro.trees.btree import BTree, BTreeConfig
from repro.trees.betree import BeTree, BeTreeConfig, OptimizedBeTree
from repro.trees.lsm import LSMTree, LSMConfig
from repro.trees.cola import COLA, COLAConfig

__all__ = [
    "EntryFormat",
    "BTree",
    "BTreeConfig",
    "BeTree",
    "BeTreeConfig",
    "OptimizedBeTree",
    "LSMTree",
    "LSMConfig",
    "COLA",
    "COLAConfig",
]
