"""Byte-size conventions shared by every dictionary.

The devices price IOs by byte count, so each tree must account for how many
bytes its nodes occupy.  Rather than serializing nodes to real byte strings
(pure overhead in a timing simulation), trees compute sizes from a fixed
:class:`EntryFormat`:

* keys are fixed-width integers (``key_bytes``),
* values are fixed-width blobs (``value_bytes``),
* child pointers are ``pointer_bytes``,
* every node pays a ``node_header_bytes`` overhead.

This matches the paper's convention of unit-size elements: one key-value
pair is the unit, and a size-``B`` node holds ``Theta(B)`` of them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EntryFormat:
    """Fixed-width sizing of keys, values and pointers.

    Defaults give a ~108-byte entry, similar to the small-record workloads
    of the paper's Section 7 experiments.
    """

    key_bytes: int = 8
    value_bytes: int = 100
    pointer_bytes: int = 8
    node_header_bytes: int = 48
    message_header_bytes: int = 4  # opcode + bookkeeping for Bε messages

    def __post_init__(self) -> None:
        if min(self.key_bytes, self.pointer_bytes) <= 0:
            raise ConfigurationError("key_bytes and pointer_bytes must be positive")
        if self.value_bytes < 0 or self.node_header_bytes < 0 or self.message_header_bytes < 0:
            raise ConfigurationError("byte sizes must be non-negative")

    @property
    def entry_bytes(self) -> int:
        """Bytes of one key-value pair in a leaf."""
        return self.key_bytes + self.value_bytes

    @property
    def pivot_bytes(self) -> int:
        """Bytes of one pivot-plus-child-pointer slot in an internal node."""
        return self.key_bytes + self.pointer_bytes

    @property
    def message_bytes(self) -> int:
        """Bytes of one buffered Bε-tree message (key, value, header)."""
        return self.key_bytes + self.value_bytes + self.message_header_bytes

    def leaf_capacity(self, node_bytes: int) -> int:
        """Entries a leaf of ``node_bytes`` can hold (at least 2)."""
        cap = (node_bytes - self.node_header_bytes) // self.entry_bytes
        if cap < 2:
            raise ConfigurationError(
                f"node size {node_bytes} holds fewer than 2 entries "
                f"({self.entry_bytes} bytes each)"
            )
        return cap

    def internal_capacity(self, node_bytes: int) -> int:
        """Pivot slots an internal node of ``node_bytes`` can hold (>= 2)."""
        cap = (node_bytes - self.node_header_bytes) // self.pivot_bytes
        if cap < 2:
            raise ConfigurationError(
                f"node size {node_bytes} holds fewer than 2 pivots "
                f"({self.pivot_bytes} bytes each)"
            )
        return cap

    def leaf_bytes(self, n_entries: int) -> int:
        """Byte footprint of a leaf holding ``n_entries``."""
        return self.node_header_bytes + n_entries * self.entry_bytes

    def internal_bytes(self, n_children: int) -> int:
        """Byte footprint of a B-tree internal node with ``n_children``."""
        return self.node_header_bytes + n_children * self.pivot_bytes

    def buffer_bytes(self, n_messages: int) -> int:
        """Byte footprint of ``n_messages`` buffered Bε-tree messages."""
        return n_messages * self.message_bytes
