"""Theorem 9 variant: per-child buffer segments over the cache-oblivious tree.

The paper's Theorem 9 observes that a Bε-tree under the *affine* model
should not buffer at every node: one layer of per-child buffer
*segments* in front of the leaf structure captures the insert win
(messages move in big sequential chunks) without paying the extra seek
levels.  :class:`BufferedCOBTree` is that design grafted onto the
:class:`~repro.trees.cob.tree.COBTree`: ``fanout`` key-range buckets,
each with its own device buffer extent, absorb writes; a full bucket
flushes its messages into the base tree as **one**
:meth:`~repro.trees.cob.tree.COBTree.put_bulk` (one PMA rebalance for
the whole batch, amortizing the ``O(log^2 n)`` movement across the
bucket).

Bucket boundaries are *weight-balanced* rather than static: a bucket
that has absorbed more than ``rebuild_factor`` times its fair share of
all messages since the last rebuild triggers a rebuild — every bucket
flushes, the splitters are recomputed as equal-weight quantiles of the
stored keys, and the absorption counters reset.  Skewed workloads
therefore keep every buffer segment equally useful, which is what makes
the amortized insert bound hold without knowing the key distribution.

IO accounting: appends charge one block write each time the bucket's
byte count fills a new block (the in-RAM tail is free, as in a real
write buffer); flushes charge the unwritten tail block plus a
sequential read of the occupied buffer span; queries that touch a
non-empty bucket pay a read of its occupied span before the base
lookup — buffered inserts get cheaper, queries strictly dearer, exactly
the trade Theorem 9 prices.
"""

from __future__ import annotations

import bisect
import math
from typing import Any, Iterable, Iterator

from repro.errors import TreeError
from repro.storage.allocator import ExtentAllocator
from repro.storage.device import BlockDevice
from repro.trees.cob.tree import COBConfig, COBTree, KEY_MAX, KEY_MIN
from repro.trees.lsm.sstable import TOMBSTONE


class _Bucket:
    """One key-range buffer segment: a device extent + in-order messages."""

    __slots__ = ("offset", "messages", "nbytes")

    def __init__(self, offset: int) -> None:
        self.offset = offset
        self.messages: list[tuple[int, Any]] = []
        self.nbytes = 0  # buffered message bytes (tail may be unwritten)


class BufferedCOBTree:
    """Cache-oblivious tree with per-child buffer segments (Theorem 9)."""

    def __init__(
        self,
        device: BlockDevice,
        config: COBConfig | None = None,
        *,
        allocator: ExtentAllocator | None = None,
    ) -> None:
        self.config = config or COBConfig()
        self.device = device
        self.allocator = allocator or ExtentAllocator(
            device.capacity_bytes, alignment=512
        )
        self.base = COBTree(device, self.config, allocator=self.allocator)
        self.user_bytes_modified = 0
        self.flushes = 0
        self.splitter_rebuilds = 0
        #: Upper-bound keys of buckets 0..fanout-2; bucket fanout-1 is open.
        self.splitters: list[int] = []
        self.buckets = [
            _Bucket(self.allocator.alloc(self.config.buffer_bytes))
            for _ in range(self.config.fanout)
        ]
        #: Messages absorbed per bucket since the last splitter rebuild.
        self.absorbed = [0] * self.config.fanout
        self._rebuilding = False

    # -- bucket geometry -----------------------------------------------------

    def _bucket_of(self, key: int) -> int:
        return bisect.bisect_left(self.splitters, key)

    def _occupied_blocks(self, bucket: _Bucket) -> int:
        return math.ceil(bucket.nbytes / self.config.block_bytes)

    def _bucket_bounds(self, b: int) -> tuple[int, int]:
        """Closed key range owned by bucket ``b`` (empty if inactive).

        Before the first splitter rebuild only bucket 0 is active and owns
        everything; inactive buckets report an inverted range.
        """
        if b > len(self.splitters):
            return 1, 0
        lo = self.splitters[b - 1] + 1 if b > 0 else KEY_MIN
        hi = self.splitters[b] if b < len(self.splitters) else KEY_MAX
        return lo, hi

    # -- write path ----------------------------------------------------------

    def _append(self, key: int, value: Any) -> None:
        self.user_bytes_modified += self.config.fmt.message_bytes
        b = self._bucket_of(key)
        bucket = self.buckets[b]
        if bucket.nbytes + self.config.fmt.message_bytes > self.config.buffer_bytes:
            self._flush(b)
            # The flush may have seeded or rebuilt the splitters, so the
            # bucket geometry can differ now; re-resolve the key's bucket
            # (every bucket involved is freshly drained either way).
            b = self._bucket_of(key)
            bucket = self.buckets[b]
        before_blocks = self._occupied_blocks(bucket)
        bucket.messages.append((key, value))
        bucket.nbytes += self.config.fmt.message_bytes
        after_blocks = self._occupied_blocks(bucket)
        if after_blocks > before_blocks and after_blocks > 1:
            # A block just filled; it goes to the device.  (The first,
            # still-filling block stays in RAM until then.)
            self.device.write(
                bucket.offset + (after_blocks - 2) * self.config.block_bytes,
                self.config.block_bytes,
            )
        self.absorbed[b] += 1
        fair = 1 + sum(self.absorbed) / self.config.fanout
        # The full-buffer floor keeps rebuild cost amortized against at
        # least one flush cycle (a freshly reset counter would otherwise
        # re-trigger after a handful of skewed inserts).
        full = self.config.buffer_bytes // self.config.fmt.message_bytes
        if (
            self.absorbed[b] >= full
            and self.absorbed[b] > self.config.rebuild_factor * fair
        ):
            self._rebuild_splitters()

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key`` (buffered)."""
        self._append(int(key), value)

    put = insert

    def delete(self, key: int) -> None:
        """Delete ``key`` (buffered tombstone)."""
        self._append(int(key), TOMBSTONE)

    def put_many(self, pairs: Iterable[tuple[int, Any]]) -> None:
        """Batched inserts, accounting-identical to an insert loop."""
        append = self._append
        for key, value in pairs:
            append(int(key), value)

    def bulk_load(self, pairs: list[tuple[int, Any]]) -> None:
        """Load a key-sorted batch into an *empty* tree sequentially.

        Delegates to the base tree's :meth:`COBTree.bulk_load`, then seeds
        the splitters from the loaded keys so the buckets partition the
        key space from the first buffered insert on.
        """
        if any(bucket.messages for bucket in self.buckets):
            raise TreeError("bulk_load requires an empty tree")
        self.base.bulk_load(pairs)
        self.user_bytes_modified += self.config.fmt.entry_bytes * len(pairs)
        if self.base.pma.n >= self.config.fanout:
            self._rebuild_splitters()

    def _flush(self, b: int) -> None:
        """Move bucket ``b``'s messages into the base tree in one batch."""
        bucket = self.buckets[b]
        if not bucket.messages:
            return
        self.flushes += 1
        blocks = self._occupied_blocks(bucket)
        tail = bucket.nbytes - (blocks - 1) * self.config.block_bytes
        if tail > 0:
            # The in-RAM tail block reaches the device before the read-back.
            self.device.write(
                bucket.offset + (blocks - 1) * self.config.block_bytes,
                self.config.block_bytes,
            )
        self.device.read(bucket.offset, blocks * self.config.block_bytes)
        final: dict[int, Any] = {}
        for key, value in bucket.messages:  # arrival order: newest wins
            final[key] = value
        puts = sorted(
            (k, v) for k, v in final.items() if v is not TOMBSTONE
        )
        if puts:
            self.base.put_bulk(puts)
        for k in sorted(k for k, v in final.items() if v is TOMBSTONE):
            if k in self.base.values:
                self.base.delete(k)
        bucket.messages = []
        bucket.nbytes = 0
        # Until the first flush there is nothing to split on (all traffic
        # funnels through bucket 0, so the weight trigger alone can never
        # fire); seed the splitters as soon as the base holds enough keys.
        if (
            not self._rebuilding
            and not self.splitters
            and self.base.pma.n >= self.config.fanout
        ):
            self._rebuild_splitters()

    def flush_all(self) -> None:
        """Drain every bucket (queries afterwards see only the base tree)."""
        for b in range(self.config.fanout):
            self._flush(b)

    def _rebuild_splitters(self) -> None:
        """Weight-balanced rebuild: flush everything, re-split by quantiles."""
        self.splitter_rebuilds += 1
        self._rebuilding = True
        try:
            self.flush_all()
        finally:
            self._rebuilding = False
        keys = self.base.pma.present_keys()
        # Choosing the quantiles reads the stored keys once, sequentially.
        self.device.read(self.base.pma.offset, self.base.pma.nbytes)
        if keys.size >= self.config.fanout:
            idx = [
                (keys.size * (j + 1)) // self.config.fanout - 1
                for j in range(self.config.fanout - 1)
            ]
            self.splitters = [int(keys[i]) for i in idx]
        self.absorbed = [0] * self.config.fanout

    # -- read path -----------------------------------------------------------

    def _charge_bucket_read(self, bucket: _Bucket) -> None:
        if bucket.nbytes:
            self.device.read(
                bucket.offset, self._occupied_blocks(bucket) * self.config.block_bytes
            )

    def get(self, key: int) -> Any | None:
        """Point query: the key's bucket first (newest message wins), then
        the base tree."""
        key = int(key)
        bucket = self.buckets[self._bucket_of(key)]
        self._charge_bucket_read(bucket)
        for k, v in reversed(bucket.messages):
            if k == key:
                return None if v is TOMBSTONE else v
        return self.base.get(key)

    def get_many(self, keys: Iterable[int]) -> list[Any | None]:
        """Batched point queries, accounting-identical to a ``get`` loop."""
        get = self.get
        return [get(key) for key in keys]

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All pairs with ``lo <= key <= hi``, merging unflushed buffers."""
        if lo > hi:
            return []
        result = dict(self.base.range(lo, hi))
        for b in range(self.config.fanout):
            b_lo, b_hi = self._bucket_bounds(b)
            if b_lo > b_hi or b_hi < lo or b_lo > hi:
                continue
            bucket = self.buckets[b]
            if not bucket.messages:
                continue
            self._charge_bucket_read(bucket)
            for k, v in bucket.messages:  # arrival order: newest wins
                if lo <= k <= hi:
                    if v is TOMBSTONE:
                        result.pop(k, None)
                    else:
                        result[k] = v
        return sorted(result.items())

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order."""
        yield from self.range(KEY_MIN, KEY_MAX)

    def __len__(self) -> int:
        return sum(1 for _ in self.items())

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert base-tree state plus bucket bookkeeping."""
        self.base.check_invariants()
        if self.splitters != sorted(self.splitters):
            raise TreeError("splitters out of order")
        if len(self.splitters) not in (0, self.config.fanout - 1):
            raise TreeError(
                f"{len(self.splitters)} splitters for fanout {self.config.fanout}"
            )
        for b, bucket in enumerate(self.buckets):
            if bucket.nbytes != len(bucket.messages) * self.config.fmt.message_bytes:
                raise TreeError(f"bucket {b}: byte counter drifted")
            if bucket.nbytes > self.config.buffer_bytes:
                raise TreeError(f"bucket {b}: over its buffer extent")
            b_lo, b_hi = self._bucket_bounds(b)
            if b_lo > b_hi and bucket.messages:
                raise TreeError(f"bucket {b}: inactive but holds messages")
            for k, _ in bucket.messages:
                if not b_lo <= k <= b_hi:
                    raise TreeError(f"bucket {b}: key {k} outside its range")
