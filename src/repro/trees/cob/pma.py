"""Packed-memory array: the storage layer of the cache-oblivious tier.

A PMA keeps ``n`` sorted keys in a power-of-two array of ``capacity``
*slots*, some of which are blank, stored in one contiguous device extent.
The array is cut into equal power-of-two *segments* (size ``~log2 C``,
as in Bender's structure); windows of ``2^j`` aligned segments form the
rebalancing hierarchy.  An insert lands in its segment; if the smallest
window containing it is too dense, the structure walks up to the first
window within its level's density threshold and evenly redistributes that
window — densities interpolate from 1.0 at a single segment down to
``max_density`` for the whole array, which is what bounds the amortized
movement per insert to ``O(log^2 n)`` slots (``O((log^2 n)/B)`` block
IOs).  When even the whole array is too dense the capacity doubles, so
the density never drops below ``max_density / 2`` under inserts.

Deletes blank their slot without underflow rebalancing (the Bender_Impl
exemplar makes the same insert-mostly simplification); the array never
shrinks.

IO accounting mirrors :mod:`repro.trees.lsm` / :mod:`repro.trees.cola`:
the PMA owns a device extent of ``capacity * entry_bytes``; redistributing
a window reads and rewrites its byte range sequentially (min one block);
doubling reads the whole old extent and writes the whole new one.  The
search layer on top (:class:`~repro.trees.cob.tree.COBTree`) does its own
accounting for the vEB-ordered index.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ConfigurationError, TreeError
from repro.storage.allocator import ExtentAllocator
from repro.storage.device import BlockDevice

#: Reserved slot-is-blank sentinel; user keys must be strictly greater.
EMPTY = np.int64(np.iinfo(np.int64).min)


def _segment_slots_for(capacity: int) -> int:
    """Segment size for ``capacity`` slots: ``~log2 C`` rounded to a power
    of two, at least 8, never more than the capacity itself."""
    target = max(8, 1 << math.ceil(math.log2(max(2, math.log2(capacity)))))
    return min(target, capacity)


class PackedMemoryArray:
    """Gapped sorted int64 array over a :class:`BlockDevice` extent."""

    def __init__(
        self,
        device: BlockDevice,
        *,
        entry_bytes: int,
        block_bytes: int = 4096,
        initial_slots: int = 1024,
        max_density: float = 0.8,
        allocator: ExtentAllocator | None = None,
    ) -> None:
        if entry_bytes <= 0:
            raise ConfigurationError(f"entry_bytes must be positive, got {entry_bytes}")
        if block_bytes <= 0:
            raise ConfigurationError(f"block_bytes must be positive, got {block_bytes}")
        if initial_slots < 8 or initial_slots & (initial_slots - 1):
            raise ConfigurationError(
                f"initial_slots must be a power of two >= 8, got {initial_slots}"
            )
        if not 0.0 < max_density < 1.0:
            raise ConfigurationError(
                f"max_density must be in (0, 1), got {max_density}"
            )
        self.device = device
        self.entry_bytes = int(entry_bytes)
        self.block_bytes = int(block_bytes)
        self.max_density = float(max_density)
        self.allocator = allocator or ExtentAllocator(
            device.capacity_bytes, alignment=512
        )
        self.n = 0
        self.rebalances = 0
        self.resizes = 0
        self._init_storage(initial_slots)

    # -- layout --------------------------------------------------------------

    def _init_storage(self, capacity: int) -> None:
        """(Re)allocate the array at ``capacity`` slots; contents empty."""
        self.capacity = capacity
        self.segment_slots = _segment_slots_for(capacity)
        self.n_segments = capacity // self.segment_slots
        self.keys = np.full(capacity, EMPTY, dtype=np.int64)
        self.seg_count = np.zeros(self.n_segments, dtype=np.int64)
        self.nbytes = capacity * self.entry_bytes
        self.offset = self.allocator.alloc(self.nbytes)

    def _upper_density(self, window_segments: int) -> float:
        """Density ceiling for a window of ``window_segments`` segments.

        Interpolates linearly in the window's level: a single segment may
        fill completely, the whole array only to ``max_density``.
        """
        levels = int(math.log2(self.n_segments)) if self.n_segments > 1 else 0
        if levels == 0:
            return self.max_density
        j = int(math.log2(window_segments))
        return 1.0 - (1.0 - self.max_density) * j / levels

    def segment_of(self, slot: int) -> int:
        """Index of the segment containing ``slot``."""
        return slot // self.segment_slots

    # -- inserts -------------------------------------------------------------

    def insert(self, key: int, slot: int) -> tuple[int, int, bool]:
        """Insert ``key`` whose successor lives at ``slot``.

        ``slot`` is where a search for ``key`` lands (the slot of the
        smallest present key ``>= key``, or the last slot when no such key
        exists); the caller's search layer provides it.  Returns
        ``(slot_lo, slot_hi, resized)``: the half-open slot range whose
        contents changed (the whole array after a resize).
        """
        return self._insert_sorted(np.array([key], dtype=np.int64), slot, slot)

    def bulk_insert(
        self, new_keys: np.ndarray, slot_lo: int, slot_hi: int
    ) -> tuple[int, int, bool]:
        """Merge a sorted, distinct key run whose span covers ``slot_lo..hi``.

        ``slot_lo``/``slot_hi`` are the search-layer slots of the first and
        last new key.  One window covering both is rebalanced once — the
        batched counterpart of ``len(new_keys)`` single inserts, and the
        flush primitive of the Theorem 9 buffered variant.  New keys that
        already exist in the array replace in place (the caller owns the
        values).
        """
        new_keys = np.asarray(new_keys, dtype=np.int64)
        if new_keys.size == 0:
            lo = self.segment_of(slot_lo) * self.segment_slots
            return lo, lo, False
        # Compare, don't diff: int64 subtraction overflows when adjacent
        # keys are more than 2^63 apart.
        if np.any(new_keys[1:] <= new_keys[:-1]):
            raise TreeError("bulk_insert needs strictly increasing keys")
        return self._insert_sorted(new_keys, slot_lo, slot_hi)

    def _insert_sorted(
        self, new_keys: np.ndarray, slot_lo: int, slot_hi: int
    ) -> tuple[int, int, bool]:
        if bool(new_keys[0] == EMPTY):
            raise TreeError("the minimum int64 is reserved as the blank sentinel")
        seg_lo = self.segment_of(slot_lo)
        seg_hi = self.segment_of(slot_hi)
        window = self._rebalance_window(seg_lo, seg_hi, extra=new_keys.size)
        if window is None:
            self._grow(new_keys)
            return 0, self.capacity, True
        lo_seg, hi_seg = window
        self._redistribute(lo_seg, hi_seg, new_keys)
        return lo_seg * self.segment_slots, hi_seg * self.segment_slots, False

    def _rebalance_window(
        self, seg_lo: int, seg_hi: int, *, extra: int
    ) -> tuple[int, int] | None:
        """Smallest aligned window covering ``[seg_lo, seg_hi]`` that stays
        within its density threshold after adding ``extra`` entries, or
        ``None`` when even the whole array would overflow."""
        w = 1
        while w <= self.n_segments:
            lo = (seg_lo // w) * w
            if seg_hi < lo + w:
                occupied = int(self.seg_count[lo : lo + w].sum())
                density = (occupied + extra) / (w * self.segment_slots)
                if density <= self._upper_density(w):
                    return lo, lo + w
            w *= 2
        return None

    def _merge(self, present: np.ndarray, new_keys: np.ndarray) -> np.ndarray:
        """Sorted union of two sorted runs; duplicate keys collapse."""
        if present.size == 0:
            return new_keys
        both = np.concatenate([present, new_keys])
        both.sort(kind="stable")
        keep = np.empty(both.size, dtype=bool)
        keep[:-1] = both[1:] != both[:-1]
        keep[-1] = True
        return both[keep]

    def _redistribute(
        self, seg_lo: int, seg_hi: int, new_keys: np.ndarray | None
    ) -> None:
        """Evenly respread the window ``[seg_lo, seg_hi)`` of segments,
        merging ``new_keys`` in; charges one sequential read + write of the
        window's byte range."""
        lo = seg_lo * self.segment_slots
        hi = seg_hi * self.segment_slots
        window = self.keys[lo:hi]
        present = window[window != EMPTY]
        merged = (
            self._merge(present, new_keys) if new_keys is not None else present
        )
        m = merged.size
        if m > hi - lo:
            raise TreeError(f"window [{lo}, {hi}) cannot hold {m} entries")
        window[:] = EMPTY
        pos = (np.arange(m, dtype=np.int64) * (hi - lo)) // max(1, m)
        window[pos] = merged
        self.seg_count[seg_lo:seg_hi] = np.bincount(
            pos // self.segment_slots, minlength=seg_hi - seg_lo
        )
        self.n += m - present.size
        self.rebalances += 1
        self._charge_span(lo, hi, read=True, write=True)

    def _grow(self, new_keys: np.ndarray) -> None:
        """Double (repeatedly, for bulk runs) and respread everything."""
        merged = self._merge(self.keys[self.keys != EMPTY], new_keys)
        need = merged.size
        capacity = self.capacity
        while need > self.max_density * capacity:
            capacity *= 2
        # The old extent is read out once, sequentially, then freed.
        self.device.read(self.offset, self.nbytes)
        self.allocator.free(self.offset, self.nbytes)
        self._init_storage(capacity)
        self.n = need
        pos = (np.arange(need, dtype=np.int64) * capacity) // max(1, need)
        self.keys[pos] = merged
        self.seg_count[:] = np.bincount(
            pos // self.segment_slots, minlength=self.n_segments
        )
        self.resizes += 1
        self.device.write(self.offset, self.nbytes)

    def load(self, sorted_keys: np.ndarray) -> None:
        """Bulk-load an empty PMA: one sequential write of the new extent."""
        if self.n:
            raise TreeError("load requires an empty array")
        keys = np.asarray(sorted_keys, dtype=np.int64)
        if keys.size and bool(keys[0] == EMPTY):
            raise TreeError("the minimum int64 is reserved as the blank sentinel")
        if keys.size and np.any(keys[1:] <= keys[:-1]):
            raise TreeError("load needs strictly increasing keys")
        capacity = self.capacity
        while keys.size > self.max_density * capacity:
            capacity *= 2
        if capacity != self.capacity:
            self.allocator.free(self.offset, self.nbytes)
            self._init_storage(capacity)
        self.n = int(keys.size)
        pos = (np.arange(keys.size, dtype=np.int64) * capacity) // max(1, keys.size)
        self.keys[pos] = keys
        self.seg_count[:] = np.bincount(
            pos // self.segment_slots, minlength=self.n_segments
        )
        self.device.write(self.offset, self.nbytes)

    # -- deletes -------------------------------------------------------------

    def delete(self, slot: int) -> None:
        """Blank ``slot`` (read-modify-write of its segment's byte range)."""
        if bool(self.keys[slot] == EMPTY):
            raise TreeError(f"slot {slot} is already blank")
        self.keys[slot] = EMPTY
        seg = self.segment_of(slot)
        self.seg_count[seg] -= 1
        self.n -= 1
        lo = seg * self.segment_slots
        self._charge_span(lo, lo + self.segment_slots, read=True, write=True)

    # -- IO accounting -------------------------------------------------------

    def _charge_span(self, slot_lo: int, slot_hi: int, *, read: bool, write: bool) -> None:
        """Charge sequential IO over a slot range, min one block."""
        span = (slot_hi - slot_lo) * self.entry_bytes
        span = max(span, min(self.block_bytes, self.nbytes))
        off = min(self.offset + slot_lo * self.entry_bytes, self.offset + self.nbytes - span)
        if read:
            self.device.read(off, span)
        if write:
            self.device.write(off, span)

    def charge_slot_read(self, slot: int) -> None:
        """Charge the block-aligned read that fetches ``slot``'s entry."""
        block = min(self.block_bytes, self.nbytes)
        frac = slot * self.entry_bytes
        off = self.offset + min((frac // block) * block, self.nbytes - block)
        self.device.read(off, block)

    def charge_slot_write(self, slot: int) -> None:
        """Charge the block-aligned write that overwrites ``slot`` in place."""
        block = min(self.block_bytes, self.nbytes)
        frac = slot * self.entry_bytes
        off = self.offset + min((frac // block) * block, self.nbytes - block)
        self.device.write(off, block)

    def present_keys(self) -> np.ndarray:
        """All present keys in sorted order (a copy)."""
        return self.keys[self.keys != EMPTY].copy()

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert sortedness, counts, and density bookkeeping."""
        present = self.keys[self.keys != EMPTY]
        if present.size != self.n:
            raise TreeError(f"count mismatch: {present.size} present, n={self.n}")
        if np.any(present[1:] <= present[:-1]):
            raise TreeError("present keys out of order")
        occupied = (self.keys != EMPTY).reshape(self.n_segments, -1).sum(axis=1)
        if not np.array_equal(occupied, self.seg_count):
            raise TreeError("segment occupancy counters drifted")
        if self.capacity % self.segment_slots:
            raise TreeError("segment size does not divide capacity")
        if self.n > self.capacity:
            raise TreeError("more entries than slots")
