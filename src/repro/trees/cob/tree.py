"""Cache-oblivious B-tree: PMA storage + vEB-ordered search layer.

The dynamic dictionary the paper's "better designs" half calls for: keys
live in a :class:`~repro.trees.cob.pma.PackedMemoryArray` (one device
extent, gapped and sorted), and searches run through a perfect binary
tree over the PMA's *slots* whose nodes are stored in **van Emde Boas
order** in a second extent.  Because every recursive bottom subtree of
the vEB order is contiguous, a root-to-leaf walk touches
``O(log_B N)`` index blocks with no node-size parameter anywhere — the
structure is near-optimal under DAM, affine, and PDAM pricing alike
(Lemma 13's layout, made dynamic), where a B-tree must re-tune its node
size per model.

The index is an implicit max-augmented heap: node ``i`` holds the
largest present key in its slot subtree, with the PMA's blank sentinel
(``INT64_MIN``) doubling as ``-inf`` so blanks need no special casing.
A search for ``key`` descends left iff ``key <= node_max[left]``,
landing exactly on the successor slot (or the last slot when no
successor exists) — which is also the insertion hint the PMA wants.
After a PMA rebalance the index is repaired *lazily over the touched
range only*: leaves for the rewritten slot window, then the ancestor
cone up to the root, charged as writes to the distinct vEB blocks
covering them.  A capacity doubling rebuilds the index extent outright
with one sequential write.

IO accounting follows :mod:`repro.trees.lsm` / :mod:`repro.trees.cola`:
devices price simulated seconds only; values live beside the structure
in Python.  The top levels of the index (sized by ``ram_bytes``) are
pinned and free to search, the analogue of COLA's pinned small levels.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Iterable, Iterator

import numpy as np

from repro.errors import ConfigurationError, KeyOrderError, TreeError
from repro.obs import OBS
from repro.storage.allocator import ExtentAllocator
from repro.storage.device import BlockDevice
from repro.trees.btree.veb import VEBLayout
from repro.trees.cob.pma import EMPTY, PackedMemoryArray
from repro.trees.sizing import EntryFormat

#: The key domain: any int64 except the PMA's blank sentinel (INT64_MIN).
KEY_MIN = -(1 << 63) + 1
KEY_MAX = (1 << 63) - 1


@dataclass(frozen=True)
class COBConfig:
    """Tuning of one cache-oblivious B-tree.

    Like the COLA, the structure has **no node-size knob** — that is its
    point.  ``block_bytes`` only prices IO (any value gives the same
    structure), ``ram_bytes`` bounds the pinned index top, and the
    buffer fields configure :class:`BufferedCOBTree` (Theorem 9).
    """

    fmt: EntryFormat = EntryFormat()
    block_bytes: int = 4096
    ram_bytes: int = 1 << 20
    initial_slots: int = 1 << 10
    max_density: float = 0.8
    #: Buffered variant only: bucket count and per-bucket buffer extent.
    fanout: int = 16
    buffer_bytes: int = 64 << 10
    #: Buffered variant only: a bucket rebuilds the splitters when it has
    #: absorbed more than ``rebuild_factor`` times its fair share.
    rebuild_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.block_bytes <= 0:
            raise ConfigurationError("block_bytes must be positive")
        if self.ram_bytes < 0:
            raise ConfigurationError("ram_bytes must be non-negative")
        if self.initial_slots < 8 or self.initial_slots & (self.initial_slots - 1):
            raise ConfigurationError(
                f"initial_slots must be a power of two >= 8, got {self.initial_slots}"
            )
        if not 0.0 < self.max_density < 1.0:
            raise ConfigurationError("max_density must be in (0, 1)")
        if self.fanout < 2:
            raise ConfigurationError(f"fanout must be >= 2, got {self.fanout}")
        if self.buffer_bytes <= 0:
            raise ConfigurationError("buffer_bytes must be positive")
        if self.rebuild_factor < 1.0:
            raise ConfigurationError("rebuild_factor must be >= 1.0")
        if self.rebuild_factor >= self.fanout:
            # A bucket absorbs at most fanout x its fair share, so the
            # weight trigger would be unreachable.
            raise ConfigurationError(
                f"rebuild_factor ({self.rebuild_factor}) must be < fanout "
                f"({self.fanout})"
            )


class COBTree:
    """A cache-oblivious B-tree storing ``int -> value`` pairs."""

    def __init__(
        self,
        device: BlockDevice,
        config: COBConfig | None = None,
        *,
        allocator: ExtentAllocator | None = None,
    ) -> None:
        self.device = device
        self.config = config or COBConfig()
        self.allocator = allocator or ExtentAllocator(
            device.capacity_bytes, alignment=512
        )
        self.pma = PackedMemoryArray(
            device,
            entry_bytes=self.config.fmt.entry_bytes,
            block_bytes=self.config.block_bytes,
            initial_slots=self.config.initial_slots,
            max_density=self.config.max_density,
            allocator=self.allocator,
        )
        self.values: dict[int, Any] = {}
        self.user_bytes_modified = 0
        self.index_rebuilds = 0
        self._layout_cache: tuple[int, VEBLayout] | None = None
        self._index_offset = -1
        self._index_nbytes = 0
        # Nodes per vEB index block: 2^levels - 1, so the recursion's
        # contiguous bottom subtrees never straddle block boundaries
        # (same packing as PDAMQuerySimulator's veb_pb mode).
        entries_per_block = self.config.block_bytes // self.config.fmt.pivot_bytes
        if entries_per_block < 1:
            raise ConfigurationError(
                f"block of {self.config.block_bytes} bytes holds no "
                f"{self.config.fmt.pivot_bytes}-byte pivots"
            )
        levels_per_block = max(1, int(math.log2(entries_per_block + 1)))
        self._nodes_per_block = (1 << levels_per_block) - 1
        self._build_index(charge=False)

    # -- index layout --------------------------------------------------------

    @property
    def _height(self) -> int:
        return int(math.log2(self.pma.capacity)) + 1

    @property
    def _first_leaf(self) -> int:
        return self.pma.capacity - 1

    def _layout(self) -> VEBLayout:
        if self._layout_cache is None or self._layout_cache[0] != self._height:
            self._layout_cache = (self._height, VEBLayout(self._height))
        return self._layout_cache[1]

    @property
    def _pinned_below(self) -> int:
        """Heap indices ``< _pinned_below`` are RAM-pinned (free to read).

        The top ``L`` complete levels fit the RAM budget when
        ``(2^L - 1) * pivot_bytes <= ram_bytes``; pinning whole levels
        keeps residency independent of the vEB permutation.
        """
        budget = self.config.ram_bytes // self.config.fmt.pivot_bytes
        levels = min(self._height, max(0, (budget + 1).bit_length() - 1))
        return (1 << levels) - 1

    def _build_index(self, *, charge: bool) -> None:
        """(Re)compute the whole max-heap and rewrite the index extent."""
        capacity = self.pma.capacity
        n_nodes = 2 * capacity - 1
        node_max = np.empty(n_nodes, dtype=np.int64)
        node_max[self._first_leaf :] = self.pma.keys
        for lvl in range(self._height - 2, -1, -1):
            lo, hi = (1 << lvl) - 1, (1 << (lvl + 1)) - 1
            node_max[lo:hi] = np.maximum(
                node_max[2 * lo + 1 : 2 * hi : 2], node_max[2 * lo + 2 : 2 * hi + 1 : 2]
            )
        self._node_max = node_max
        if self._index_offset >= 0:
            self.allocator.free(self._index_offset, self._index_nbytes)
        n_blocks = math.ceil(n_nodes / self._nodes_per_block)
        self._index_nbytes = n_blocks * self.config.block_bytes
        self._index_offset = self.allocator.alloc(self._index_nbytes)
        if charge:
            self.index_rebuilds += 1
            self.device.write(self._index_offset, self._index_nbytes)

    def _charge_index_path(self, path: list[int]) -> None:
        """Charge reads of the distinct unpinned vEB blocks on a root-to-leaf
        path, in ascending block order (deterministic)."""
        pinned_below = self._pinned_below
        unpinned = [i for i in path if i >= pinned_below]
        if not unpinned:
            return
        position = self._layout().position
        blocks = np.unique(position[unpinned] // self._nodes_per_block)
        for blk in blocks:
            self.device.read(
                self._index_offset + int(blk) * self.config.block_bytes,
                self.config.block_bytes,
            )

    def _update_index(self, slot_lo: int, slot_hi: int, resized: bool) -> None:
        """Repair the heap over slots ``[slot_lo, slot_hi)`` after the PMA
        rewrote them; charge writes of the covering vEB blocks."""
        if resized:
            self._build_index(charge=True)
            return
        node_max = self._node_max
        lo, hi = self._first_leaf + slot_lo, self._first_leaf + slot_hi
        node_max[lo:hi] = self.pma.keys[slot_lo:slot_hi]
        touched = [np.arange(lo, hi, dtype=np.int64)]
        while lo > 0:
            lo, hi = (lo - 1) >> 1, (((hi - 1) - 1) >> 1) + 1
            node_max[lo:hi] = np.maximum(
                node_max[2 * lo + 1 : 2 * hi : 2], node_max[2 * lo + 2 : 2 * hi + 1 : 2]
            )
            touched.append(np.arange(lo, hi, dtype=np.int64))
        nodes = np.concatenate(touched)
        nodes = nodes[nodes >= self._pinned_below]
        if nodes.size == 0:
            return
        blocks = np.unique(self._layout().position[nodes] // self._nodes_per_block)
        # Coalesce adjacent dirty blocks into sequential writes.
        runs = np.split(blocks, np.flatnonzero(np.diff(blocks) > 1) + 1)
        for run in runs:
            self.device.write(
                self._index_offset + int(run[0]) * self.config.block_bytes,
                run.size * self.config.block_bytes,
            )

    # -- search --------------------------------------------------------------

    def _search_path(self, key: int) -> list[int]:
        """Heap indices from the root to the leaf of ``key``'s successor slot
        (the last slot when the tree holds no key ``>= key``)."""
        node_max = self._node_max
        path = []
        i = 0
        first_leaf = self._first_leaf
        while i < first_leaf:
            path.append(i)
            left = 2 * i + 1
            i = left if key <= node_max[left] else left + 1
        path.append(i)
        return path

    def _slot_of(self, path: list[int]) -> int:
        return path[-1] - self._first_leaf

    # -- write path ----------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self.user_bytes_modified += self.config.fmt.entry_bytes
        key = int(key)
        path = self._search_path(key)
        self._charge_index_path(path)
        slot = self._slot_of(path)
        if key in self.values:
            # Overwrite in place: the slot's data block is rewritten and
            # the index is untouched.
            self.values[key] = value
            self.pma.charge_slot_write(slot)
            return
        self.values[key] = value
        lo, hi, resized = self.pma.insert(key, slot)
        self._update_index(lo, hi, resized)

    put = insert

    def put_many(self, pairs: Iterable[tuple[int, Any]]) -> None:
        """Insert many pairs, identical in accounting to an insert loop.

        Contract (as for the other trees, ``tests/trees/test_put_many.py``):
        device clock, stats, and structural state must match calling
        :meth:`insert` once per pair exactly — the batch only removes
        Python-level overhead.
        """
        insert = self.insert
        for key, value in pairs:
            insert(key, value)

    def delete(self, key: int) -> None:
        """Remove ``key``; raises ``TreeError`` if absent."""
        key = int(key)
        path = self._search_path(key)
        self._charge_index_path(path)
        slot = self._slot_of(path)
        if key not in self.values or bool(self.pma.keys[slot] != key):
            raise TreeError(f"key {key} not present")
        self.user_bytes_modified += self.config.fmt.entry_bytes
        del self.values[key]
        self.pma.delete(slot)
        seg_lo = self.pma.segment_of(slot) * self.pma.segment_slots
        self._update_index(seg_lo, seg_lo + self.pma.segment_slots, False)

    def put_bulk(self, pairs: list[tuple[int, Any]]) -> None:
        """Merge a key-sorted batch in one PMA rebalance.

        The primitive behind the buffered variant's flushes: one window
        covering the whole run is redistributed once, so ``m`` inserts
        cost one rebalance instead of ``m``.  Keys must be strictly
        increasing; existing keys are overwritten.
        """
        if not pairs:
            return
        self.user_bytes_modified += self.config.fmt.entry_bytes * len(pairs)
        keys = np.array([k for k, _ in pairs], dtype=np.int64)
        # Compare, don't diff: int64 subtraction overflows when adjacent
        # keys are more than 2^63 apart.
        if np.any(keys[1:] <= keys[:-1]):
            raise KeyOrderError("put_bulk needs strictly increasing keys")
        fresh = np.array([int(k) not in self.values for k in keys], dtype=bool)
        for k, v in pairs:
            self.values[int(k)] = v
        if not fresh.any():
            # Pure overwrite: rewrite the covered data blocks, index untouched.
            lo_path = self._search_path(int(keys[0]))
            self._charge_index_path(lo_path)
            slot_lo = self._slot_of(lo_path)
            slot_hi = self._slot_of(self._search_path(int(keys[-1])))
            self.pma._charge_span(slot_lo, slot_hi + 1, read=False, write=True)
            return
        new_keys = keys[fresh]
        lo_path = self._search_path(int(new_keys[0]))
        self._charge_index_path(lo_path)
        slot_lo = self._slot_of(lo_path)
        slot_hi = self._slot_of(self._search_path(int(new_keys[-1])))
        lo, hi, resized = self.pma.bulk_insert(new_keys, slot_lo, slot_hi)
        self._update_index(lo, hi, resized)
        if resized or fresh.all():
            return
        # Mixed batch: overwritten keys outside the rebalanced window never
        # moved, so the window rewrite above did not cover them.  Charge
        # their data blocks like the pure-overwrite branch does, one
        # covering span on each side of the window.
        slots = np.flatnonzero(np.isin(self.pma.keys, keys[~fresh]))
        for side in (slots[slots < lo], slots[slots >= hi]):
            if side.size:
                self.pma._charge_span(
                    int(side[0]), int(side[-1]) + 1, read=False, write=True
                )

    def bulk_load(self, pairs: list[tuple[int, Any]]) -> None:
        """Load a key-sorted batch into an *empty* tree sequentially."""
        if len(self.values):
            raise TreeError("bulk_load requires an empty tree")
        if not pairs:
            return
        keys = np.array([k for k, _ in pairs], dtype=np.int64)
        if np.any(keys[1:] <= keys[:-1]):
            raise KeyOrderError("bulk_load needs strictly increasing keys")
        self.user_bytes_modified += self.config.fmt.entry_bytes * len(pairs)
        self.values = {int(k): v for k, v in pairs}
        self.pma.load(keys)
        self._build_index(charge=True)

    # -- read path -----------------------------------------------------------

    def get(self, key: int) -> Any | None:
        """Point query; returns the value or ``None``."""
        if OBS.enabled:
            start = self.device.clock
        key = int(key)
        path = self._search_path(key)
        self._charge_index_path(path)
        slot = self._slot_of(path)
        hit = bool(self.pma.keys[slot] == key)
        if hit:
            self.pma.charge_slot_read(slot)
        if OBS.enabled:
            OBS.op_event("cob.query", start, self.device.clock, key=key)
        return self.values.get(key) if hit else None

    def get_many(self, keys: Iterable[int]) -> list[Any | None]:
        """Batched point queries, accounting-identical to a ``get`` loop."""
        get = self.get
        return [get(key) for key in keys]

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All pairs with ``lo <= key <= hi`` in key order.

        One index descent to the start, then one sequential read of the
        slot span covering the answer — the PMA's gapped-but-sorted
        layout is what makes ranges a single scan.
        """
        if lo > hi:
            return []
        path = self._search_path(int(lo))
        self._charge_index_path(path)
        pk = self.pma.keys
        mask = (pk != EMPTY) & (pk >= lo) & (pk <= hi)
        slots = np.flatnonzero(mask)
        if slots.size == 0:
            return []
        self.pma._charge_span(int(slots[0]), int(slots[-1]) + 1, read=True, write=False)
        return [(int(k), self.values[int(k)]) for k in pk[slots]]

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order."""
        yield from self.range(KEY_MIN, KEY_MAX)

    def __len__(self) -> int:
        return self.pma.n

    # -- invariants ----------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert PMA state, heap consistency, and value bookkeeping."""
        self.pma.check_invariants()
        if self.pma.n != len(self.values):
            raise TreeError(
                f"{self.pma.n} slots occupied but {len(self.values)} values"
            )
        present = self.pma.present_keys()
        if set(int(k) for k in present) != set(self.values):
            raise TreeError("PMA keys and value map diverged")
        node_max = self._node_max
        if node_max.size != 2 * self.pma.capacity - 1:
            raise TreeError("index heap sized for a different capacity")
        if not np.array_equal(node_max[self._first_leaf :], self.pma.keys):
            raise TreeError("index leaves do not mirror the PMA")
        internal = node_max[: self._first_leaf]
        recomputed = np.maximum(
            node_max[1 : 2 * self._first_leaf : 2],
            node_max[2 : 2 * self._first_leaf + 1 : 2],
        )
        if not np.array_equal(internal, recomputed):
            raise TreeError("index heap max-augmentation broken")
