"""Cache-oblivious tier: packed-memory array + vEB search layer.

See :mod:`repro.trees.cob.tree` for the design and
:mod:`repro.trees.cob.buffered` for the Theorem 9 buffered variant.
"""

from repro.trees.cob.buffered import BufferedCOBTree
from repro.trees.cob.pma import EMPTY, PackedMemoryArray
from repro.trees.cob.tree import COBConfig, COBTree

__all__ = [
    "BufferedCOBTree",
    "COBConfig",
    "COBTree",
    "EMPTY",
    "PackedMemoryArray",
]
