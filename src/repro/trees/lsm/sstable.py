"""Immutable sorted string tables (SSTables).

An SSTable is a sorted, immutable run of key-value pairs (with tombstones
encoded as a sentinel).  Its byte footprint is priced with the shared
:class:`~repro.trees.sizing.EntryFormat`; point lookups charge one
*data-block* read (the per-table index is assumed memory-resident, as in
LevelDB).
"""

from __future__ import annotations

import bisect
from typing import Any

from repro.errors import TreeError
from repro.trees.sizing import EntryFormat

#: Sentinel value marking a deletion (tombstone) inside a run.
TOMBSTONE = object()


class SSTable:
    """One immutable sorted run."""

    __slots__ = ("table_id", "keys", "values", "offset", "nbytes")

    def __init__(self, table_id: int, keys: list[int], values: list[Any]) -> None:
        if not keys:
            raise TreeError("an SSTable cannot be empty")
        if len(keys) != len(values):
            raise TreeError("keys/values length mismatch")
        for a, b in zip(keys, keys[1:]):
            if a >= b:
                raise TreeError("SSTable keys must be strictly increasing")
        self.table_id = table_id
        self.keys = keys
        self.values = values
        self.offset = -1   # assigned when written
        self.nbytes = 0    # assigned when written

    @property
    def min_key(self) -> int:
        """Smallest key in the run."""
        return self.keys[0]

    @property
    def max_key(self) -> int:
        """Largest key in the run."""
        return self.keys[-1]

    def __len__(self) -> int:
        return len(self.keys)

    def data_bytes(self, fmt: EntryFormat) -> int:
        """Byte footprint of the run's data."""
        return fmt.node_header_bytes + len(self.keys) * fmt.entry_bytes

    def overlaps(self, lo: int, hi: int) -> bool:
        """Whether the run's key range intersects ``[lo, hi]``."""
        return not (hi < self.min_key or lo > self.max_key)

    def lookup(self, key: int) -> tuple[Any, bool]:
        """``(value, found)`` — value may be the TOMBSTONE sentinel."""
        i = bisect.bisect_left(self.keys, key)
        if i < len(self.keys) and self.keys[i] == key:
            return self.values[i], True
        return None, False

    def slice(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """Pairs with ``lo <= key <= hi`` (tombstones included)."""
        i = bisect.bisect_left(self.keys, lo)
        j = bisect.bisect_right(self.keys, hi)
        return list(zip(self.keys[i:j], self.values[i:j]))
