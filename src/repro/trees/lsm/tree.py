"""Leveled LSM-tree over a simulated device.

Structure follows LevelDB: an in-memory *memtable* absorbs writes; when it
fills it is flushed as an SSTable into level 0; level 0 holds overlapping
runs, deeper levels hold disjoint runs; when level ``i`` exceeds its byte
budget (``growth_factor ** i * level1_bytes``), one run is merged into the
overlapping runs of level ``i+1`` and the output re-cut into
``sstable_bytes`` runs.

IO pricing:

* flush/compaction reads and writes whole runs (this is where the LSM's
  write amplification of ``~growth_factor * depth`` comes from);
* a point query charges one data-block read per probed run (indexes and
  bloom-filter metadata are memory-resident, as in LevelDB; we do not
  model bloom filters, so every level is probed — the paper's trees don't
  get filters either, keeping the comparison honest);
* a range query reads the overlapping portion of every overlapping run.
"""

from __future__ import annotations

import bisect
import heapq
from dataclasses import dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError, TreeError
from repro.storage.device import BlockDevice
from repro.storage.allocator import ExtentAllocator
from repro.trees.lsm.sstable import SSTable, TOMBSTONE
from repro.trees.sizing import EntryFormat


@dataclass(frozen=True)
class LSMConfig:
    """Tuning of one LSM-tree instance."""

    sstable_bytes: int = 2 << 20      # LevelDB's 2 MiB default
    memtable_bytes: int = 2 << 20
    level1_bytes: int = 8 << 20
    growth_factor: int = 10
    l0_trigger: int = 4               # L0 run count that triggers compaction
    block_bytes: int = 4096           # data-block read size for point queries
    fmt: EntryFormat = EntryFormat()

    def __post_init__(self) -> None:
        if self.sstable_bytes <= self.fmt.entry_bytes + self.fmt.node_header_bytes:
            raise ConfigurationError("sstable_bytes too small for a single entry")
        if self.memtable_bytes <= 0 or self.level1_bytes <= 0:
            raise ConfigurationError("memtable and level budgets must be positive")
        if self.growth_factor < 2:
            raise ConfigurationError(f"growth_factor must be >= 2, got {self.growth_factor}")
        if self.l0_trigger < 1:
            raise ConfigurationError(f"l0_trigger must be >= 1, got {self.l0_trigger}")
        if self.block_bytes <= 0:
            raise ConfigurationError("block_bytes must be positive")

    @property
    def entries_per_sstable(self) -> int:
        """Entries one run holds."""
        return max(1, (self.sstable_bytes - self.fmt.node_header_bytes) // self.fmt.entry_bytes)

    @property
    def entries_per_memtable(self) -> int:
        """Entries the memtable holds before flushing."""
        return max(1, self.memtable_bytes // self.fmt.entry_bytes)


class LSMTree:
    """A leveled LSM dictionary storing ``int -> value`` pairs."""

    def __init__(self, device: BlockDevice, config: LSMConfig | None = None, *,
                 allocator: ExtentAllocator | None = None) -> None:
        self.device = device
        self.config = config or LSMConfig()
        self.allocator = allocator or ExtentAllocator(device.capacity_bytes, alignment=512)
        self.memtable: dict[int, Any] = {}
        self.levels: list[list[SSTable]] = [[]]   # levels[0] newest-first
        self._next_table_id = 0
        self.user_bytes_modified = 0
        self.compactions = 0

    # -- write path ----------------------------------------------------------------

    def insert(self, key: int, value: Any) -> None:
        """Insert or overwrite ``key``."""
        self.memtable[key] = value
        self.user_bytes_modified += self.config.fmt.entry_bytes
        self._maybe_flush()

    def put_many(self, pairs: list[tuple[int, Any]]) -> None:
        """Batched inserts: identical to a serial loop of :meth:`insert`.

        The flush check still runs after every pair — a memtable can fill
        mid-batch, and the flush/compaction schedule (hence every device
        write) must match the serial loop exactly.
        """
        memtable = self.memtable
        entry_bytes = self.config.fmt.entry_bytes
        cap = self.config.entries_per_memtable
        for key, value in pairs:
            memtable[key] = value
            self.user_bytes_modified += entry_bytes
            if len(memtable) >= cap:
                self.flush_memtable()
                memtable = self.memtable  # the flush swapped in a fresh dict

    def delete(self, key: int) -> None:
        """Delete ``key`` (tombstone)."""
        self.memtable[key] = TOMBSTONE
        self.user_bytes_modified += self.config.fmt.entry_bytes
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        if len(self.memtable) >= self.config.entries_per_memtable:
            self.flush_memtable()

    def flush_memtable(self) -> None:
        """Write the memtable as L0 run(s) and trigger compactions."""
        if not self.memtable:
            return
        pairs = sorted(self.memtable.items())
        self.memtable = {}
        for run in self._cut_runs(pairs):
            self.levels[0].insert(0, run)  # newest first
            self._write_table(run)
        self._compact_as_needed()

    def _cut_runs(self, pairs: list[tuple[int, Any]]) -> list[SSTable]:
        per = self.config.entries_per_sstable
        runs = []
        for start in range(0, len(pairs), per):
            chunk = pairs[start : start + per]
            t = SSTable(self._next_table_id, [k for k, _ in chunk], [v for _, v in chunk])
            self._next_table_id += 1
            runs.append(t)
        return runs

    def _write_table(self, table: SSTable) -> None:
        nbytes = table.data_bytes(self.config.fmt)
        table.offset = self.allocator.alloc(nbytes)
        table.nbytes = nbytes
        self.device.write(table.offset, nbytes)

    def _drop_table(self, table: SSTable) -> None:
        self.allocator.free(table.offset, table.nbytes)

    def _level_bytes(self, level: int) -> int:
        return sum(t.nbytes for t in self.levels[level])

    def _level_budget(self, level: int) -> int:
        return self.config.level1_bytes * self.config.growth_factor ** (level - 1)

    def _compact_as_needed(self) -> None:
        while True:
            if len(self.levels[0]) > self.config.l0_trigger:
                self._compact(0)
                continue
            done = True
            for lvl in range(1, len(self.levels)):
                if self._level_bytes(lvl) > self._level_budget(lvl):
                    self._compact(lvl)
                    done = False
                    break
            if done:
                return

    def _compact(self, level: int) -> None:
        """Merge one source run (all runs for L0) into the next level."""
        self.compactions += 1
        while len(self.levels) <= level + 1:
            self.levels.append([])
        if level == 0:
            sources = list(self.levels[0])
            self.levels[0] = []
        else:
            # Pick the largest run (simple deterministic victim policy).
            victim = max(self.levels[level], key=lambda t: t.nbytes)
            self.levels[level].remove(victim)
            sources = [victim]
        lo = min(t.min_key for t in sources)
        hi = max(t.max_key for t in sources)
        below = [t for t in self.levels[level + 1] if t.overlaps(lo, hi)]
        for t in below:
            self.levels[level + 1].remove(t)

        # Charge reads of every input run.
        for t in sources + below:
            self.device.read(t.offset, t.nbytes)

        # Tombstones can be dropped when the output lands in the deepest
        # level: runs there are key-disjoint, so every older version of any
        # merged key was necessarily in `sources + below`.
        merged = self._merge_runs(
            sources, below, drop_tombstones=(level + 1 == len(self.levels) - 1)
        )
        for t in sources + below:
            self._drop_table(t)
        out_runs = self._cut_runs(merged)
        for run in out_runs:
            self._write_table(run)
        # Deeper levels hold key-disjoint runs in key order.
        self.levels[level + 1].extend(out_runs)
        self.levels[level + 1].sort(key=lambda t: t.min_key)

    def _merge_runs(
        self, newer: list[SSTable], older: list[SSTable], *, drop_tombstones: bool
    ) -> list[tuple[int, Any]]:
        """K-way merge; newer runs shadow older ones per key."""
        # Precedence: position in `newer` (earlier = newer), then `older`.
        streams: list[tuple[int, SSTable]] = [(i, t) for i, t in enumerate(newer)]
        streams += [(len(newer) + i, t) for i, t in enumerate(older)]
        heap: list[tuple[int, int, int]] = []  # (key, precedence, stream_idx)
        pos = [0] * len(streams)
        for si, (prec, t) in enumerate(streams):
            heapq.heappush(heap, (t.keys[0], prec, si))
        out: list[tuple[int, Any]] = []
        while heap:
            key, prec, si = heapq.heappop(heap)
            _, t = streams[si]
            value = t.values[pos[si]]
            pos[si] += 1
            if pos[si] < len(t.keys):
                heapq.heappush(heap, (t.keys[pos[si]], streams[si][0], si))
            if out and out[-1][0] == key:
                continue  # a higher-precedence stream already emitted this key
            out.append((key, value))
        if drop_tombstones:
            out = [(k, v) for k, v in out if v is not TOMBSTONE]
        return out

    # -- read path ------------------------------------------------------------------

    def _probe(self, table: SSTable, key: int) -> tuple[Any, bool]:
        """Charge one data-block read and look ``key`` up in ``table``."""
        block = min(self.config.block_bytes, table.nbytes)
        # Block-aligned read within the run.
        i = bisect.bisect_left(table.keys, key)
        frac = i * self.config.fmt.entry_bytes
        block_off = table.offset + (frac // block) * block
        block_off = min(block_off, table.offset + table.nbytes - block)
        self.device.read(block_off, block)
        return table.lookup(key)

    def get(self, key: int) -> Any | None:
        """Point query; returns the value or ``None``."""
        if key in self.memtable:
            v = self.memtable[key]
            return None if v is TOMBSTONE else v
        for t in self.levels[0]:   # newest first
            if t.overlaps(key, key):
                v, found = self._probe(t, key)
                if found:
                    return None if v is TOMBSTONE else v
        for lvl in range(1, len(self.levels)):
            runs = self.levels[lvl]
            idx = bisect.bisect_right([t.min_key for t in runs], key) - 1
            if 0 <= idx < len(runs) and runs[idx].overlaps(key, key):
                v, found = self._probe(runs[idx], key)
                if found:
                    return None if v is TOMBSTONE else v
        return None

    def __contains__(self, key: int) -> bool:
        return self.get(key) is not None

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """All pairs with ``lo <= key <= hi`` in key order."""
        if lo > hi:
            return []
        result: dict[int, Any] = {}
        # Apply from oldest to newest so newer writes win.
        for lvl in range(len(self.levels) - 1, 0, -1):
            for t in self.levels[lvl]:
                if t.overlaps(lo, hi):
                    self._read_overlap(t, lo, hi)
                    result.update(t.slice(lo, hi))
        for t in reversed(self.levels[0]):  # oldest L0 first
            if t.overlaps(lo, hi):
                self._read_overlap(t, lo, hi)
                result.update(t.slice(lo, hi))
        for k in sorted(result):
            if lo <= k <= hi and result[k] is TOMBSTONE:
                del result[k]
        for k, v in self.memtable.items():
            if lo <= k <= hi:
                if v is TOMBSTONE:
                    result.pop(k, None)
                else:
                    result[k] = v
        return sorted(result.items())

    def _read_overlap(self, table: SSTable, lo: int, hi: int) -> None:
        """Charge reading the overlapping byte range of a run."""
        fmt = self.config.fmt
        i = bisect.bisect_left(table.keys, lo)
        j = bisect.bisect_right(table.keys, hi)
        nbytes = max(self.config.block_bytes, (j - i) * fmt.entry_bytes)
        nbytes = min(nbytes, table.nbytes)
        offset = min(table.offset + i * fmt.entry_bytes, table.offset + table.nbytes - nbytes)
        self.device.read(offset, nbytes)

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order."""
        lo, hi = -(1 << 62), 1 << 62
        yield from self.range(lo, hi)

    def __len__(self) -> int:
        return len(list(self.items()))

    # -- invariants ---------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert level structure: budgets are soft, disjointness is hard."""
        for lvl in range(1, len(self.levels)):
            runs = self.levels[lvl]
            for a, b in zip(runs, runs[1:]):
                if a.max_key >= b.min_key:
                    raise TreeError(
                        f"level {lvl} runs overlap: [{a.min_key},{a.max_key}] vs "
                        f"[{b.min_key},{b.max_key}]"
                    )
        for lvl, runs in enumerate(self.levels):
            for t in runs:
                if t.offset < 0 or t.nbytes <= 0:
                    raise TreeError(f"run {t.table_id} in level {lvl} was never written")
