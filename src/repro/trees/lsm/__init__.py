"""Leveled LSM-tree (LevelDB-style) baseline.

The paper's introduction names three write-optimized dictionary families:
Bε-trees, log-structured merge trees, and external-memory skip lists — and
specifically asks why "LevelDB's LSM-tree uses 2 MiB SSTables for all
workloads."  This baseline lets the benchmark suite sweep the SSTable size
the way Figures 2-3 sweep node sizes (experiment E11).
"""

from repro.trees.lsm.sstable import SSTable
from repro.trees.lsm.tree import LSMTree, LSMConfig

__all__ = ["SSTable", "LSMTree", "LSMConfig"]
