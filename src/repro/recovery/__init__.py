"""repro.recovery — write-ahead logging, checkpoints, crash recovery.

The durability layer of the simulator, built on the crash fault model of
:mod:`repro.faults`:

* :class:`~repro.recovery.wal.WriteAheadLog` — group-committed,
  CRC-framed log on its own device extent (sequential append, commit
  markers, checkpoint truncation, torn-tail detection);
* :class:`~repro.recovery.durable.DurableTree` — wraps any tree in the
  zoo (btree / betree / lsm / cob): logs logical ops before acking,
  checkpoints into alternating regions, and replays the committed log
  suffix on :meth:`~repro.recovery.durable.DurableTree.recover`;
* :func:`~repro.recovery.checker.run_check` — the crash-consistency
  checker: crash at every IO boundary (or a seeded sample), recover,
  verify invariants and durability linearizability.

See docs/recovery.md for the WAL format and the checker's contract;
experiment E21 (``durability``) sweeps group-commit batch size and
checkpoint cadence across cost models.
"""

from repro.recovery.checker import (
    CHECK_MODES,
    CheckFailure,
    CheckReport,
    expected_contents,
    generate_workload,
    run_check,
)
from repro.recovery.durable import (
    RECOVERY_TREES,
    DurableConfig,
    DurableTree,
    RecoveryReport,
)
from repro.recovery.wal import WAL_OPS, WriteAheadLog, scan

__all__ = [
    "CHECK_MODES",
    "RECOVERY_TREES",
    "WAL_OPS",
    "CheckFailure",
    "CheckReport",
    "DurableConfig",
    "DurableTree",
    "RecoveryReport",
    "WriteAheadLog",
    "expected_contents",
    "generate_workload",
    "run_check",
    "scan",
]
