"""Systematic crash-consistency checking: crash everywhere, verify always.

The checker is the robustness analogue of the lint self-clean gate.  For
one seeded mixed workload it:

1. does a **dry run** (no crash) to count the IO boundaries the workload
   crosses after load and warm-up;
2. for every boundary (exhaustive mode) or a seeded sample of them,
   rebuilds the whole system from scratch with a
   :class:`~repro.faults.crash.CrashPlan` armed at that boundary, runs
   the workload into the crash, recovers, and verifies

   * **tree invariants** — ``check_invariants()`` on the recovered tree;
   * **durability linearizability** — the recovered contents equal the
     dict model of exactly the *acked* op prefix (``lsn <=
     committed_lsn`` at crash time): every acked op survives, nothing
     unacked appears (no phantoms), and a fresh write works afterwards.

Workloads and crash points are pure functions of their seeds, so a
checker failure replays exactly — report the boundary ordinal and rerun
with ``at_io`` pinned to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.errors import ConfigurationError, DeviceCrashed
from repro.faults.crash import CrashPlan
from repro.faults.device import FaultyDevice
from repro.faults.plan import FaultPlan
from repro.recovery.durable import DurableConfig, DurableTree, RECOVERY_TREES
from repro.storage.ram import ConstantLatencyDevice

#: Checker modes.
CHECK_MODES = ("exhaustive", "sample")


@dataclass(frozen=True)
class CheckFailure:
    """One boundary where recovery broke its contract."""

    ordinal: int
    reason: str

    def describe(self) -> dict[str, Any]:
        """JSON-able summary."""
        return {"ordinal": self.ordinal, "reason": self.reason}


@dataclass
class CheckReport:
    """What one :func:`run_check` covered and found."""

    tree: str
    mode: str
    ops: int
    boundaries_total: int
    boundaries_tested: int
    crashes_fired: int
    replayed_records: int
    failures: list[CheckFailure] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        """Whether every tested boundary recovered correctly."""
        return not self.failures

    def describe(self) -> dict[str, Any]:
        """JSON-able summary."""
        return {
            "tree": self.tree,
            "mode": self.mode,
            "ops": self.ops,
            "boundaries_total": self.boundaries_total,
            "boundaries_tested": self.boundaries_tested,
            "crashes_fired": self.crashes_fired,
            "replayed_records": self.replayed_records,
            "failures": [f.describe() for f in self.failures],
            "passed": self.passed,
        }


def generate_workload(
    n_ops: int,
    *,
    universe: int = 1 << 16,
    seed: int = 0,
    n_load: int = 64,
    put_weight: float = 0.55,
    delete_weight: float = 0.15,
) -> tuple[list[tuple[int, Any]], list[tuple[str, int, Any]]]:
    """A seeded mixed workload: ``(load_pairs, ops)``.

    Ops are ``("p", key, value)``, ``("d", key, None)`` or ``("g", key,
    None)``; deletes always target a key present in the running model
    (every tree kind accepts them), and the stream is a pure function of
    the arguments.
    """
    if n_ops < 1:
        raise ConfigurationError(f"n_ops must be >= 1, got {n_ops}")
    if n_load < 0:
        raise ConfigurationError(f"n_load must be >= 0, got {n_load}")
    if universe < max(n_load, 2):
        raise ConfigurationError(f"universe {universe} too small")
    rng = np.random.default_rng(seed)
    load_keys = rng.choice(universe, size=n_load, replace=False) if n_load else []
    load_pairs = sorted((int(k), f"v{int(k)}") for k in load_keys)
    model = dict(load_pairs)
    ops: list[tuple[str, int, Any]] = []
    counter = 0
    while len(ops) < n_ops:
        draw = float(rng.random())
        if draw < put_weight or not model:
            key = int(rng.integers(0, universe))
            counter += 1
            ops.append(("p", key, f"w{counter}"))
            model[key] = f"w{counter}"
        elif draw < put_weight + delete_weight:
            keys = sorted(model)
            key = keys[int(rng.integers(0, len(keys)))]
            ops.append(("d", key, None))
            del model[key]
        else:
            keys = sorted(model)
            key = keys[int(rng.integers(0, len(keys)))]
            ops.append(("g", key, None))
    return load_pairs, ops


def _build(
    tree: str,
    config_kwargs: dict[str, Any],
    load_pairs: list[tuple[int, Any]],
    *,
    latency_seconds: float,
    capacity_bytes: int,
) -> tuple[FaultyDevice, DurableTree]:
    """One fresh (device, durable tree) pair, loaded but not yet armed."""
    inner = ConstantLatencyDevice(latency_seconds, capacity_bytes)
    device = FaultyDevice(inner, FaultPlan())
    durable = DurableTree(device, DurableConfig(tree=tree, **config_kwargs))
    durable.load(list(load_pairs))
    return device, durable


def _run_ops(durable: DurableTree, ops: list[tuple[str, int, Any]]) -> None:
    """Apply the op stream, ending with a sync (crashes propagate)."""
    for op, key, value in ops:
        if op == "p":
            durable.put(key, value)
        elif op == "d":
            durable.delete(key)
        else:
            durable.get(key)
    durable.sync()


def expected_contents(
    load_pairs: list[tuple[int, Any]],
    ops: list[tuple[str, int, Any]],
    acked_writes: int,
) -> dict[int, Any]:
    """The dict model restricted to the first ``acked_writes`` logged ops."""
    model = dict(load_pairs)
    applied = 0
    for op, key, value in ops:
        if op == "g":
            continue
        if applied >= acked_writes:
            break
        if op == "p":
            model[key] = value
        else:
            model.pop(key, None)
        applied += 1
    return model


def run_check(
    tree: str,
    *,
    n_ops: int = 80,
    n_load: int = 64,
    universe: int = 1 << 16,
    seed: int = 0,
    mode: str = "exhaustive",
    samples: int = 32,
    group_commit: int = 4,
    checkpoint_every: int = 0,
    node_bytes: int = 4096,
    cache_bytes: int = 32 << 10,
    wal_bytes: int = 8 << 20,
    ckpt_bytes: int = 16 << 20,
    latency_seconds: float = 1e-4,
    capacity_bytes: int = 2 << 30,
) -> CheckReport:
    """Crash one workload at every (or a sampled set of) IO boundaries.

    ``mode="exhaustive"`` tests every boundary the dry run counted;
    ``mode="sample"`` tests ``samples`` of them, drawn without
    replacement from a stream seeded by ``seed`` — cheap enough for CI,
    and any failure it finds replays exhaustively.
    """
    if tree not in RECOVERY_TREES:
        raise ConfigurationError(
            f"unknown tree {tree!r}; expected one of {RECOVERY_TREES}"
        )
    if mode not in CHECK_MODES:
        raise ConfigurationError(
            f"unknown mode {mode!r}; expected one of {CHECK_MODES}"
        )
    if samples < 1:
        raise ConfigurationError(f"samples must be >= 1, got {samples}")
    config_kwargs = dict(
        node_bytes=node_bytes,
        cache_bytes=cache_bytes,
        wal_bytes=wal_bytes,
        group_commit=group_commit,
        checkpoint_every=checkpoint_every,
        ckpt_bytes=ckpt_bytes,
    )
    load_pairs, ops = generate_workload(
        n_ops, universe=universe, seed=seed, n_load=n_load
    )

    # Dry run: how many IO boundaries does the workload cross?
    device, durable = _build(
        tree,
        config_kwargs,
        load_pairs,
        latency_seconds=latency_seconds,
        capacity_bytes=capacity_bytes,
    )
    device.arm_crash(None)  # ordinal 0 = first post-load IO
    _run_ops(durable, ops)
    total = device.io_ordinal
    final_model = expected_contents(load_pairs, ops, n_ops + 1)
    if durable.contents() != final_model:
        raise ConfigurationError(
            "dry run does not match the dict model; the workload generator "
            "and the tree disagree before any crash is injected"
        )

    if mode == "exhaustive":
        boundaries = list(range(total))
    else:
        k = min(samples, total)
        picks = np.random.default_rng(seed + 1).choice(total, size=k, replace=False)
        boundaries = sorted(int(b) for b in picks)

    report = CheckReport(
        tree=tree,
        mode=mode,
        ops=n_ops,
        boundaries_total=total,
        boundaries_tested=len(boundaries),
        crashes_fired=0,
        replayed_records=0,
    )
    for ordinal in boundaries:
        failure = _check_one(
            tree,
            config_kwargs,
            load_pairs,
            ops,
            ordinal,
            seed=seed,
            latency_seconds=latency_seconds,
            capacity_bytes=capacity_bytes,
            report=report,
        )
        if failure is not None:
            report.failures.append(failure)
    return report


def _check_one(
    tree: str,
    config_kwargs: dict[str, Any],
    load_pairs: list[tuple[int, Any]],
    ops: list[tuple[str, int, Any]],
    ordinal: int,
    *,
    seed: int,
    latency_seconds: float,
    capacity_bytes: int,
    report: CheckReport,
) -> CheckFailure | None:
    """Crash at one boundary; recover; verify the durability contract."""
    device, durable = _build(
        tree,
        config_kwargs,
        load_pairs,
        latency_seconds=latency_seconds,
        capacity_bytes=capacity_bytes,
    )
    device.arm_crash(CrashPlan(seed=seed ^ (ordinal * 2654435761), at_io=ordinal))
    try:
        _run_ops(durable, ops)
        return CheckFailure(ordinal, "armed crash never fired during the workload")
    except DeviceCrashed:
        pass
    report.crashes_fired += 1
    # LSNs start at 1 on the first workload write (the load is not
    # logged), so committed_lsn IS the count of acked write ops.
    acked = durable.wal.committed_lsn
    rec = durable.recover()
    report.replayed_records += rec.replayed_records
    try:
        durable.check_invariants()
    # Not swallowed: the exception becomes a reported CheckFailure.
    except Exception as exc:  # repro-lint: ignore[ERR001]
        return CheckFailure(ordinal, f"invariants broken after recovery: {exc}")
    expected = expected_contents(load_pairs, ops, acked)
    got = durable.contents()
    if got != expected:
        lost = sorted(set(expected) - set(got))[:5]
        phantom = sorted(set(got) - set(expected))[:5]
        changed = sorted(
            k for k in set(got) & set(expected) if got[k] != expected[k]
        )[:5]
        return CheckFailure(
            ordinal,
            f"contents diverge from the acked prefix ({acked} acked): "
            f"lost={lost} phantom={phantom} changed={changed}",
        )
    # The recovered tree must also be writable: one fresh durable put.
    probe_key = int(max(expected, default=0)) + 1
    durable.put(probe_key, "probe")
    durable.sync()
    if durable.get(probe_key) != "probe":
        return CheckFailure(ordinal, "post-recovery write not readable")
    return None
