"""DurableTree: WAL-backed durability over any tree in the zoo.

The shim wraps one tree kind (btree / betree / lsm / cob) and gives it a
persistence story on its own device:

* every logical op is logged to a :class:`~repro.recovery.wal.WriteAheadLog`
  *before* it touches the tree (write-ahead rule), and is acked only once
  its commit group is durable;
* a checkpoint snapshots the full contents into one of two alternating
  device regions, publishes it with a single superblock write, and only
  then truncates the log — a crash at any earlier point leaves the
  previous checkpoint plus the full log intact;
* :meth:`recover` rebuilds the tree from the latest published checkpoint
  and replays the committed log suffix over it, so the recovered state is
  *exactly* the acked ops — no lost acks, no phantom writes.  The
  crash-consistency checker (:mod:`repro.recovery.checker`) verifies that
  equality at every IO boundary.

Device layout (all extents carved off the low end, reserved from the
tree's allocator before it places any node)::

    [superblock][checkpoint A][checkpoint B][write-ahead log][tree ...]

Devices price IO without storing bytes, so checkpoints — like the WAL's
durable image — live as Python state paired with real charged IO: the
snapshot write, the superblock publish, the recovery-time reads, and the
rebuild's tree writes all land on the wrapped device's clock, which is
what E21 sweeps across cost models.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Iterator

from repro.errors import ConfigurationError, TreeError, WALError
from repro.faults.crash import CrashState
from repro.faults.device import FaultyDevice
from repro.obs import OBS
from repro.recovery.wal import WriteAheadLog
from repro.storage.device import BlockDevice

#: Tree kinds a DurableTree can wrap.
RECOVERY_TREES = ("btree", "betree", "lsm", "cob")

#: Bytes of the superblock that names the active checkpoint region.
SUPERBLOCK_BYTES = 512


@dataclass(frozen=True)
class DurableConfig:
    """How the durability layer is laid out and paced.

    Parameters
    ----------
    tree:
        One of :data:`RECOVERY_TREES`.
    node_bytes:
        Tree node size (B-tree/Bε-tree), LSM block size, or COB block size.
    cache_bytes:
        Buffer-cache budget (stack-backed kinds only).
    wal_bytes:
        The log extent.  Must hold every record between two checkpoints.
    group_commit:
        Records per WAL commit batch (the E21 sweep axis).
    checkpoint_every:
        Ops between automatic checkpoints (0 = checkpoint only on demand).
    ckpt_bytes:
        Bytes of *each* of the two checkpoint regions; a snapshot larger
        than one region raises :class:`~repro.errors.WALError`.
    """

    tree: str = "btree"
    node_bytes: int = 4096
    cache_bytes: int = 256 << 10
    wal_bytes: int = 4 << 20
    group_commit: int = 8
    checkpoint_every: int = 0
    ckpt_bytes: int = 16 << 20

    def __post_init__(self) -> None:
        if self.tree not in RECOVERY_TREES:
            raise ConfigurationError(
                f"unknown tree {self.tree!r}; expected one of {RECOVERY_TREES}"
            )
        if self.node_bytes <= 0 or self.cache_bytes <= 0:
            raise ConfigurationError("node_bytes and cache_bytes must be positive")
        if self.wal_bytes <= 0 or self.ckpt_bytes <= 0:
            raise ConfigurationError("wal_bytes and ckpt_bytes must be positive")
        if self.group_commit < 1:
            raise ConfigurationError(
                f"group_commit must be >= 1, got {self.group_commit}"
            )
        if self.checkpoint_every < 0:
            raise ConfigurationError(
                f"checkpoint_every must be >= 0, got {self.checkpoint_every}"
            )

    def describe(self) -> dict[str, Any]:
        """Stable JSON-able identity."""
        return asdict(self)


@dataclass(frozen=True)
class RecoveryReport:
    """What one :meth:`DurableTree.recover` call did."""

    crash: CrashState | None
    checkpoint_lsn: int
    replayed_records: int
    recovery_seconds: float

    def describe(self) -> dict[str, Any]:
        """JSON-able summary."""
        return {
            "crash": self.crash.describe() if self.crash is not None else None,
            "checkpoint_lsn": self.checkpoint_lsn,
            "replayed_records": self.replayed_records,
            "recovery_seconds": self.recovery_seconds,
        }


class DurableTree:
    """A tree from the zoo with write-ahead logging and crash recovery."""

    def __init__(self, device: BlockDevice, config: DurableConfig | None = None) -> None:
        self.config = config or DurableConfig()
        self.device = device
        cfg = self.config
        self._ckpt_offsets = (
            SUPERBLOCK_BYTES,
            SUPERBLOCK_BYTES + cfg.ckpt_bytes,
        )
        self._wal_offset = SUPERBLOCK_BYTES + 2 * cfg.ckpt_bytes
        self._reserved = self._wal_offset + cfg.wal_bytes
        if self._reserved >= device.capacity_bytes:
            raise ConfigurationError(
                f"durability extents ({self._reserved} bytes) leave no room "
                f"for the tree on a {device.capacity_bytes}-byte device"
            )
        self.wal = WriteAheadLog(
            device,
            offset=self._wal_offset,
            capacity_bytes=cfg.wal_bytes,
            group_commit=cfg.group_commit,
        )
        #: The latest *published* checkpoint: (covered LSN, full contents).
        self._checkpoint: tuple[int, list[tuple[int, Any]]] = (0, [])
        self._active_region = 0
        self._ops_since_ckpt = 0
        self.replays = 0
        self.replayed_records = 0
        self.checkpoints_taken = 0
        self.checkpoint_seconds = 0.0
        self._build_tree()

    # -- construction --------------------------------------------------------

    def _build_tree(self) -> None:
        """(Re-)create the wrapped tree, with the durability extents reserved."""
        cfg = self.config
        if cfg.tree in ("btree", "betree"):
            from repro.storage.stack import StorageStack

            stack = StorageStack(self.device, cfg.cache_bytes)
            stack.allocator.alloc(self._reserved)  # extent 0: ours, not a node's
            if cfg.tree == "btree":
                from repro.trees.btree import BTree, BTreeConfig

                tree_cfg: Any = BTreeConfig(node_bytes=cfg.node_bytes)
                self.tree = BTree(stack, tree_cfg)
            else:
                from repro.trees.betree import BeTreeConfig, OptimizedBeTree

                # fanout=None derives F from epsilon, so small WAL-friendly
                # node sizes still leave buffer room (fixed F=16 does not).
                tree_cfg = BeTreeConfig(node_bytes=cfg.node_bytes, fanout=None)
                self.tree = OptimizedBeTree(stack, tree_cfg)
            self.stack: Any = stack
        else:
            from repro.storage.allocator import ExtentAllocator

            allocator = ExtentAllocator(self.device.capacity_bytes, alignment=512)
            allocator.alloc(self._reserved)
            if cfg.tree == "lsm":
                from repro.trees.lsm import LSMConfig, LSMTree

                tree_cfg = LSMConfig(
                    sstable_bytes=max(16 * cfg.node_bytes, 64 << 10),
                    memtable_bytes=max(16 * cfg.node_bytes, 64 << 10),
                    level1_bytes=max(64 * cfg.node_bytes, 256 << 10),
                    block_bytes=cfg.node_bytes,
                )
                self.tree = LSMTree(self.device, tree_cfg, allocator=allocator)
            else:
                from repro.trees.cob import COBConfig, COBTree

                tree_cfg = COBConfig(block_bytes=cfg.node_bytes)
                self.tree = COBTree(self.device, tree_cfg, allocator=allocator)
            self.stack = None
        self._entry_bytes = tree_cfg.fmt.entry_bytes

    # -- write path ----------------------------------------------------------

    def put(self, key: int, value: Any) -> int:
        """Log, apply, maybe checkpoint; returns the op's LSN.

        The op is durable once ``committed_lsn`` reaches the LSN (its
        group committed) — a crash before that loses it, and recovery is
        allowed to.
        """
        lsn = self.wal.append("p", int(key), value)
        self.tree.insert(int(key), value)
        self._after_write()
        return lsn

    insert = put

    def delete(self, key: int) -> int:
        """Log and apply a delete; returns the op's LSN.

        Inherits the wrapped tree's semantics for absent keys (the COB
        tier raises; the checker only deletes present keys).  For the COB
        kind the presence check runs *before* logging, so a refused
        delete never leaves a record that would poison replay.
        """
        if self.config.tree == "cob" and int(key) not in self.tree.values:
            raise TreeError(f"key {int(key)} not present")
        lsn = self.wal.append("d", int(key))
        self.tree.delete(int(key))
        self._after_write()
        return lsn

    def _after_write(self) -> None:
        self._ops_since_ckpt += 1
        if (
            self.config.checkpoint_every
            and self._ops_since_ckpt >= self.config.checkpoint_every
        ):
            self.checkpoint()

    def sync(self) -> None:
        """Force the pending WAL group out (commit early)."""
        self.wal.commit()

    def acked(self, lsn: int) -> bool:
        """Whether the op with this LSN is durably acknowledged."""
        return lsn <= self.wal.committed_lsn

    def load(self, pairs: list[tuple[int, Any]]) -> None:
        """Bulk-load an empty tree and checkpoint it (the durable baseline).

        The load itself is not logged — it is construction, not traffic —
        so durability starts at the checkpoint this method takes.
        """
        pairs = sorted((int(k), v) for k, v in pairs)
        if self.config.tree == "lsm":
            self.tree.put_many(pairs)
            self.tree.flush_memtable()
        else:
            self.tree.bulk_load(pairs)
        self.checkpoint()

    # -- read path -----------------------------------------------------------

    def get(self, key: int) -> Any | None:
        """Point query (delegates)."""
        return self.tree.get(int(key))

    def get_many(self, keys: list[int]) -> list[Any | None]:
        """Batched point queries (batched descent where the tree has one)."""
        get_many = getattr(self.tree, "get_many", None)
        if get_many is not None:
            return get_many(keys)
        return [self.tree.get(int(k)) for k in keys]

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """Range query (delegates)."""
        return self.tree.range(lo, hi)

    def items(self) -> Iterator[tuple[int, Any]]:
        """All pairs in key order (delegates)."""
        return iter(self.tree.items())

    def contents(self) -> dict[int, Any]:
        """The full logical contents, as a dict (checker's ground truth)."""
        return dict(self.tree.items())

    def check_invariants(self) -> None:
        """Assert the wrapped tree's structural invariants."""
        self.tree.check_invariants()

    @property
    def io_seconds(self) -> float:
        """Total simulated device seconds charged so far."""
        return self.device.stats.busy_seconds

    # -- checkpoint ----------------------------------------------------------

    @property
    def checkpoint_lsn(self) -> int:
        """LSN the latest published checkpoint covers."""
        return self._checkpoint[0]

    def checkpoint(self) -> None:
        """Snapshot contents to the inactive region; publish; truncate.

        Crash-safe by ordering: the WAL flush, the snapshot write and the
        superblock publish are all charged before any in-memory state
        flips, so a crash anywhere mid-checkpoint leaves the previous
        checkpoint and the un-truncated log as the recovery source.
        """
        self.wal.commit()
        pairs = list(self.tree.items())
        snapshot_bytes = max(len(pairs) * self._entry_bytes, SUPERBLOCK_BYTES)
        if snapshot_bytes > self.config.ckpt_bytes:
            raise WALError(
                f"checkpoint of {len(pairs)} entries ({snapshot_bytes} bytes) "
                f"exceeds the {self.config.ckpt_bytes}-byte region"
            )
        target = self._ckpt_offsets[1 - self._active_region]
        spent = self.device.write(target, snapshot_bytes)
        spent += self.device.write(0, SUPERBLOCK_BYTES)  # the publish point
        self._checkpoint = (self.wal.committed_lsn, pairs)
        self._active_region = 1 - self._active_region
        self.wal.truncate()
        self._ops_since_ckpt = 0
        self.checkpoints_taken += 1
        self.checkpoint_seconds += spent

    # -- recovery ------------------------------------------------------------

    def recover(self) -> RecoveryReport:
        """Rebuild from the latest checkpoint plus the committed log suffix.

        Clears the device's crashed state first (when it is a crashed
        :class:`~repro.faults.device.FaultyDevice`), then charges the
        recovery IO: superblock + snapshot reads, the log scan, and the
        rebuild's own tree writes.  Returns what it did and what it cost.
        """
        device = self.device
        crash = None
        if isinstance(device, FaultyDevice) and device.crashed:
            crash = device.recover()
        t0 = device.stats.busy_seconds
        device.read(0, SUPERBLOCK_BYTES)  # which region is live
        ckpt_lsn, pairs = self._checkpoint
        if pairs:
            device.read(
                self._ckpt_offsets[self._active_region],
                max(len(pairs) * self._entry_bytes, SUPERBLOCK_BYTES),
            )
        self._build_tree()
        if pairs:
            if self.config.tree == "lsm":
                self.tree.put_many(list(pairs))
                self.tree.flush_memtable()
            else:
                self.tree.bulk_load(list(pairs))
        records = self.wal.recover(base_lsn=ckpt_lsn)
        replayed = 0
        for lsn, op, key, value in records:
            if lsn <= ckpt_lsn:
                continue
            if op == "p":
                self.tree.insert(key, value)
            else:
                self.tree.delete(key)
            replayed += 1
        self._ops_since_ckpt = replayed
        self.replays += 1
        self.replayed_records += replayed
        if OBS.enabled:
            OBS.counter("recovery.replays").inc()
            OBS.counter("recovery.replayed_records").inc(replayed)
        return RecoveryReport(
            crash=crash,
            checkpoint_lsn=ckpt_lsn,
            replayed_records=replayed,
            recovery_seconds=device.stats.busy_seconds - t0,
        )
