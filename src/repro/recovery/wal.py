"""Write-ahead log on a device extent: group commit, CRC frames, truncate.

The log is the write-path analogue of the paper's node-size story: a
commit is one *sequential* write of ``group_commit`` framed records plus
a commit marker, so its cost under the DAM is one block charge while the
affine model prices it at ``1 + alpha * k`` — which is why the optimal
group-commit batch size moves with the cost model (E21, the Corollary 6/7
argument applied to logging).

**Framing.** Each record is ``<len><crc32>`` (8 bytes, little-endian)
followed by a compact-JSON payload ``[lsn, op, key, value]``; ``op`` is
``"p"`` (put), ``"d"`` (delete) or ``"c"`` (commit marker, value null).
A group becomes durable atomically-or-not: the marker is the last frame
of the commit blob, so a crash that tears the blob anywhere leaves the
marker incomplete and :meth:`scan` discards the whole group — exactly
the ARIES rule that a record without its commit is not yet a promise.

**Device contract.** Devices in this simulator price IO but do not store
bytes, so the log keeps its own durable image (``bytearray``) as the
model of what is on the platter; every mutation of the image is paired
with a real device IO at the log extent, charged through whatever
accounting stack wraps the device.  A torn commit write
(:class:`~repro.errors.DeviceCrashed` with ``persisted_bytes``) appends
exactly the persisted prefix to the image, which is what makes the CRC
torn-tail tests mean something.
"""

from __future__ import annotations

import json
import struct
import zlib
from typing import Any

from repro.errors import ConfigurationError, DeviceCrashed, WALError
from repro.obs import OBS
from repro.storage.device import BlockDevice

#: Per-record frame header: payload length + CRC32 of the payload.
_HEADER = struct.Struct("<II")

#: Op codes a WAL record can carry.
WAL_OPS = ("p", "d", "c")


def _frame(lsn: int, op: str, key: int | None, value: Any) -> bytes:
    """One CRC-framed record."""
    payload = json.dumps([lsn, op, key, value], separators=(",", ":")).encode()
    return _HEADER.pack(len(payload), zlib.crc32(payload)) + payload


def scan(image: bytes) -> tuple[list[tuple[int, str, int, Any]], int]:
    """Parse a durable log image into its committed records.

    Returns ``(records, valid_bytes)``: the logical records of every
    *complete* commit group in order, and the byte length of the valid
    prefix (up to and including the last intact commit marker).  Frames
    past that point — torn, CRC-corrupt, or committed-marker-less — are
    the crash debris recovery must ignore.
    """
    records: list[tuple[int, str, int, Any]] = []
    staged: list[tuple[int, str, int, Any]] = []
    pos = 0
    valid = 0
    n = len(image)
    while pos + _HEADER.size <= n:
        length, crc = _HEADER.unpack_from(image, pos)
        end = pos + _HEADER.size + length
        if end > n:
            break  # torn frame
        payload = image[pos + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            break  # corrupt tail
        try:
            lsn, op, key, value = json.loads(payload)
        except (ValueError, TypeError):
            break
        if op not in WAL_OPS:
            break
        pos = end
        if op == "c":
            records.extend(staged)
            staged = []
            valid = pos
        else:
            staged.append((int(lsn), op, int(key), value))
    return records, valid


class WriteAheadLog:
    """Group-committed, CRC-framed log living at a fixed device extent.

    Parameters
    ----------
    device:
        Where commit writes are charged (any block device; usually the
        same one the tree lives on, wrapped in a
        :class:`~repro.faults.device.FaultyDevice`).
    offset, capacity_bytes:
        The log's extent.  :meth:`commit` appends sequentially within it;
        exceeding it raises :class:`~repro.errors.WALError` (checkpoint
        more often, or give the log more room).
    group_commit:
        Records per commit batch.  ``append`` buffers records and
        auto-commits every ``group_commit``-th one; ``commit()`` flushes
        early (the sync knob).
    """

    def __init__(
        self,
        device: BlockDevice,
        *,
        offset: int,
        capacity_bytes: int,
        group_commit: int = 8,
    ) -> None:
        if capacity_bytes <= 0:
            raise ConfigurationError(
                f"wal capacity_bytes must be positive, got {capacity_bytes}"
            )
        if offset < 0 or offset + capacity_bytes > device.capacity_bytes:
            raise ConfigurationError(
                f"wal extent [{offset}, {offset + capacity_bytes}) outside "
                f"device capacity {device.capacity_bytes}"
            )
        if group_commit < 1:
            raise ConfigurationError(
                f"group_commit must be >= 1, got {group_commit}"
            )
        self.device = device
        self.offset = int(offset)
        self.capacity_bytes = int(capacity_bytes)
        self.group_commit = int(group_commit)
        self._durable = bytearray()  # the modeled on-platter log image
        self._pending: list[tuple[int, str, int, Any]] = []
        self.next_lsn = 1
        self.committed_lsn = 0
        self.commits = 0
        self.checkpoints = 0
        self.appends = 0
        self.write_seconds = 0.0

    # -- write path ----------------------------------------------------------

    @property
    def durable_bytes(self) -> int:
        """Bytes of the on-platter log image."""
        return len(self._durable)

    @property
    def pending_records(self) -> int:
        """Appended records not yet covered by a commit marker."""
        return len(self._pending)

    def append(self, op: str, key: int, value: Any = None) -> int:
        """Log one logical op; returns its LSN.

        The record is durable — and the op ackable — only once
        ``committed_lsn`` reaches the returned LSN (auto group commit, or
        an explicit :meth:`commit`).
        """
        if op not in ("p", "d"):
            raise ConfigurationError(f"op must be 'p' or 'd', got {op!r}")
        lsn = self.next_lsn
        self.next_lsn += 1
        self._pending.append((lsn, op, int(key), value))
        self.appends += 1
        if len(self._pending) >= self.group_commit:
            self.commit()
        return lsn

    def commit(self) -> None:
        """Flush pending records as one sequential commit-group write.

        On a crash mid-write the persisted prefix of the blob lands in the
        durable image (torn tail) and the exception propagates: none of
        the group's records are acked, and :func:`scan` will discard the
        marker-less debris on recovery.
        """
        if not self._pending:
            return
        last_lsn = self._pending[-1][0]
        blob = b"".join(_frame(*rec) for rec in self._pending)
        blob += _frame(last_lsn, "c", None, None)
        if len(self._durable) + len(blob) > self.capacity_bytes:
            raise WALError(
                f"wal extent full: {len(self._durable)} + {len(blob)} > "
                f"{self.capacity_bytes} bytes (checkpoint to truncate)"
            )
        try:
            self.write_seconds += self.device.write(
                self.offset + len(self._durable), len(blob)
            )
        except DeviceCrashed as exc:
            persisted = getattr(exc.state, "persisted_bytes", 0)
            self._durable += blob[:persisted]
            raise
        self._durable += blob
        self.committed_lsn = last_lsn
        self._pending.clear()
        self.commits += 1
        if OBS.enabled:
            OBS.counter("wal.commits").inc()

    def truncate(self) -> None:
        """Drop the durable image (a checkpoint now covers its records).

        Pure bookkeeping at this layer: the checkpoint publish write that
        makes truncation safe is charged by the caller
        (:meth:`~repro.recovery.durable.DurableTree.checkpoint`).
        """
        self._durable = bytearray()
        self.checkpoints += 1
        if OBS.enabled:
            OBS.counter("wal.checkpoints").inc()

    # -- recovery ------------------------------------------------------------

    def recover(self, *, base_lsn: int = 0) -> list[tuple[int, str, int, Any]]:
        """Re-read the log after a crash; returns the committed records.

        Charges one sequential read of the durable image, truncates the
        image back to its last intact commit marker, discards pending
        (never-written) records, and resyncs the LSN counters to what
        actually survived.  ``base_lsn`` is the LSN the latest checkpoint
        already covers — the floor for ``committed_lsn`` when the log was
        truncated at that checkpoint.
        """
        records, valid = scan(bytes(self._durable))
        if self._durable:
            self.device.read(self.offset, len(self._durable))
        self._durable = bytearray(self._durable[:valid])
        self._pending.clear()
        self.committed_lsn = max((r[0] for r in records), default=base_lsn)
        self.next_lsn = self.committed_lsn + 1
        return records
