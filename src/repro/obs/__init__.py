"""repro.obs — unified observability: metrics registry + span tracing.

One process-wide :class:`~repro.obs.registry.MetricsRegistry` (the module
constant :data:`OBS`) collects counters, gauges and log-scale histograms
from every instrumented layer — devices, buffer cache, discrete-event
engine, read-ahead scheduler, trees, and the sweep runner.  An optional
:class:`~repro.obs.tracing.Tracer` buffers structured spans for JSONL
export.

Everything is **off by default**: instrumented hot paths check a single
boolean (``OBS.enabled``) and fall through, so simulated results are
byte-identical with observability on or off, and a disabled run pays one
attribute test per event.  Enable around a measured region::

    from repro import obs

    obs.enable(trace=True)
    ...workload...
    print(obs.OBS.snapshot()["counters"]["device.read.ios"])
    obs.OBS.tracer.export_jsonl("trace.jsonl")
    obs.disable()

Schema and metric catalogue: docs/observability.md.
"""

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.obs.tracing import (
    TRACE_SCHEMA,
    SpanRecord,
    Tracer,
    read_jsonl,
    spans_from_jsonl,
)

#: The process-wide registry every instrumented layer records into.
OBS = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide registry (same object as :data:`OBS`)."""
    return OBS


def enable(*, trace: bool = False, max_spans: int = 1_000_000) -> MetricsRegistry:
    """Turn on metrics collection (and optionally span tracing).

    Idempotent; with ``trace=True`` a fresh :class:`Tracer` is attached
    only if none is present, so re-enabling keeps buffered spans.
    """
    if trace and OBS.tracer is None:
        OBS.tracer = Tracer(max_spans=max_spans)
    OBS.enable()
    return OBS


def disable(*, detach_tracer: bool = False) -> None:
    """Stop recording; optionally drop the tracer and its spans."""
    OBS.disable()
    if detach_tracer:
        OBS.tracer = None


def reset() -> None:
    """Zero all metrics and clear buffered spans (registry stays enabled/disabled as-is)."""
    OBS.reset()


__all__ = [
    "OBS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanRecord",
    "TRACE_SCHEMA",
    "Tracer",
    "disable",
    "enable",
    "get_registry",
    "read_jsonl",
    "reset",
    "spans_from_jsonl",
]
