"""Process-wide metrics registry: counters, gauges, log-scale histograms.

The registry is the metrics half of :mod:`repro.obs` (the tracing half
lives in :mod:`repro.obs.tracing`).  Design constraints, in order:

1. **Near-zero overhead when disabled.**  Instrumented hot paths guard
   every record with a single attribute check (``if OBS.enabled:``), so a
   run with observability off pays one boolean test per event and nothing
   else.  Nothing in this module is ever consulted by timing math, so
   enabling it cannot change simulated results — only report them.
2. **O(1) record when enabled.**  Counters and gauges are single slot
   writes; histograms bucket by power of two via :func:`math.frexp`, so
   recording is a dict increment, never a scan of bucket edges.
3. **Stable export.**  :meth:`MetricsRegistry.snapshot` returns plain
   sorted dicts of JSON-able values; docs/observability.md freezes the
   schema so external tooling can consume it.

Metric names are dotted paths (``device.read.ios``, ``cache.hits``); the
instrumented layer owns its prefix.  See docs/observability.md for the
full catalogue.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Any

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.obs.tracing import Tracer


class Counter:
    """A monotonically increasing event count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, n: int = 1) -> None:
        """Add ``n`` (device byte counters pass sizes, not just 1)."""
        self.value += n


class Gauge:
    """A last-value-wins measurement (queue depth, occupancy, ratio).

    Alongside the last value the gauge keeps min/max/count so a snapshot
    shows the range a fluctuating quantity covered, not just where it
    happened to end.
    """

    __slots__ = ("name", "value", "vmin", "vmax", "n_sets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.n_sets = 0

    def set(self, value: float) -> None:
        """Record the current value of the measured quantity."""
        self.value = value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        self.n_sets += 1


class Histogram:
    """Log-scale (power-of-two bucket) histogram with O(1) record.

    Values land in bucket ``e`` when ``2**(e-1) < v <= 2**e`` (computed
    with :func:`math.frexp`, not a bucket scan), which suits both latencies
    spanning microseconds-to-seconds and IO sizes spanning bytes-to-MiB.
    Zero and negative values land in the reserved ``None`` bucket so a
    degenerate recording is visible instead of silently mis-binned.
    """

    __slots__ = ("name", "count", "total", "vmin", "vmax", "buckets")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.vmin = math.inf
        self.vmax = -math.inf
        self.buckets: dict[int | None, int] = {}

    def record(self, value: float) -> None:
        """Record one observation."""
        self.count += 1
        self.total += value
        if value < self.vmin:
            self.vmin = value
        if value > self.vmax:
            self.vmax = value
        if value > 0.0:
            mantissa, exponent = math.frexp(value)
            # frexp: value = mantissa * 2**exponent with mantissa in [0.5, 1),
            # so v <= 2**exponent with equality only when mantissa == 0.5.
            key = exponent - 1 if mantissa == 0.5 else exponent
        else:
            key = None
        self.buckets[key] = self.buckets.get(key, 0) + 1

    @property
    def mean(self) -> float:
        """Arithmetic mean of recorded values (0.0 before any record)."""
        return self.total / self.count if self.count else 0.0

    def bucket_bounds(self, key: int | None) -> tuple[float, float]:
        """The ``(lo, hi]`` value range of bucket ``key``."""
        if key is None:
            return (-math.inf, 0.0)
        return (2.0 ** (key - 1), 2.0**key)


class MetricsRegistry:
    """Named counters, gauges and histograms behind one enable switch.

    Instruments are created on first use and persist (at zero) across
    :meth:`reset`, so a snapshot taken after a quiet phase still lists
    every metric the process has ever touched.
    """

    def __init__(self, *, enabled: bool = False) -> None:
        self.enabled = bool(enabled)
        self.tracer: "Tracer | None" = None
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}
        # Hot-path caches: io_event/op_event fire per IO, so the derived
        # metric names and instrument lookups are resolved once per kind.
        # Safe to hold references because reset() zeroes instruments in
        # place rather than replacing them.
        self._io_cache: dict[str, tuple] = {}
        self._op_cache: dict[str, tuple] = {}
        self._setup_counters: tuple[Counter, Counter] | None = None

    # -- instrument access --------------------------------------------------

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        c = self._counters.get(name)
        if c is None:
            c = self._counters[name] = Counter(self._check_name(name))
        return c

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        g = self._gauges.get(name)
        if g is None:
            g = self._gauges[name] = Gauge(self._check_name(name))
        return g

    def histogram(self, name: str) -> Histogram:
        """Get or create the histogram called ``name``."""
        h = self._histograms.get(name)
        if h is None:
            h = self._histograms[name] = Histogram(self._check_name(name))
        return h

    @staticmethod
    def _check_name(name: str) -> str:
        if not name or name != name.strip():
            raise ConfigurationError(f"bad metric name {name!r}")
        return name

    # -- lifecycle -----------------------------------------------------------

    def enable(self, *, tracer: "Tracer | None" = None) -> None:
        """Turn recording on, optionally attaching a span tracer."""
        self.enabled = True
        if tracer is not None:
            self.tracer = tracer

    def disable(self) -> None:
        """Turn recording off (instruments keep their accumulated values)."""
        self.enabled = False

    def reset(self) -> None:
        """Zero every instrument and drop any buffered spans."""
        for c in self._counters.values():
            c.value = 0
        for g in self._gauges.values():
            g.value = 0.0
            g.vmin = math.inf
            g.vmax = -math.inf
            g.n_sets = 0
        for h in self._histograms.values():
            h.count = 0
            h.total = 0.0
            h.vmin = math.inf
            h.vmax = -math.inf
            h.buckets = {}
        if self.tracer is not None:
            self.tracer.clear()

    # -- composite hot-path events -------------------------------------------

    def io_event(
        self,
        device: str,
        kind: str,
        offset: int,
        nbytes: int,
        start: float,
        end: float,
        setup_seconds: float | None = None,
    ) -> None:
        """Record one completed device IO (called only when enabled).

        Updates the ``device.*`` counter/histogram family and, when a
        tracer is attached, emits a simulated-clock span carrying the
        seek/bandwidth split when the device reported one.
        """
        elapsed = end - start
        inst = self._io_cache.get(kind)
        if inst is None:
            inst = self._io_cache[kind] = (
                self.counter(f"device.{kind}.ios"),
                self.counter(f"device.{kind}.bytes"),
                self.histogram(f"device.{kind}.seconds"),
                self.histogram(f"device.{kind}.io_bytes"),
                f"device.{kind}",
            )
        ios, total_bytes, seconds_h, bytes_h, span_name = inst
        ios.inc()
        total_bytes.inc(nbytes)
        seconds_h.record(elapsed)
        bytes_h.record(nbytes)
        if setup_seconds is not None:
            split = self._setup_counters
            if split is None:
                split = self._setup_counters = (
                    self.counter("device.setup_seconds_x1e9"),
                    self.counter("device.transfer_seconds_x1e9"),
                )
            split[0].inc(int(setup_seconds * 1e9))
            split[1].inc(int((elapsed - setup_seconds) * 1e9))
        if self.tracer is not None:
            attrs: dict[str, Any] = {
                "device": device,
                "offset": offset,
                "nbytes": nbytes,
            }
            if setup_seconds is not None:
                attrs["setup_seconds"] = setup_seconds
                attrs["transfer_seconds"] = elapsed - setup_seconds
            self.tracer.record_span(span_name, start, end, "sim", attrs)

    def op_event(self, name: str, start: float, end: float, **attrs: Any) -> None:
        """Record one structural operation (tree query/flush/split).

        ``start``/``end`` are simulated device-clock readings around the
        operation, so the histogram holds *charged IO time per op*, not
        interpreter time.  Called only when enabled.
        """
        inst = self._op_cache.get(name)
        if inst is None:
            inst = self._op_cache[name] = (
                self.counter(f"{name}.count"),
                self.histogram(f"{name}.io_seconds"),
            )
        inst[0].inc()
        inst[1].record(end - start)
        if self.tracer is not None:
            self.tracer.record_span(name, start, end, "sim", attrs)

    # -- export ----------------------------------------------------------------

    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of every instrument (schema: docs/observability.md)."""
        counters = {
            name: c.value for name, c in sorted(self._counters.items())
        }
        gauges = {
            name: {
                "value": g.value,
                "min": None if g.n_sets == 0 else g.vmin,
                "max": None if g.n_sets == 0 else g.vmax,
                "n_sets": g.n_sets,
            }
            for name, g in sorted(self._gauges.items())
        }
        histograms = {
            name: {
                "count": h.count,
                "total": h.total,
                "mean": h.mean,
                "min": None if h.count == 0 else h.vmin,
                "max": None if h.count == 0 else h.vmax,
                "buckets": {
                    ("<=0" if k is None else str(k)): v
                    for k, v in sorted(
                        h.buckets.items(), key=lambda kv: (kv[0] is None, kv[0] or 0)
                    )
                },
            }
            for name, h in sorted(self._histograms.items())
        }
        return {
            "schema": "repro.obs.metrics/v1",
            "enabled": self.enabled,
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }
