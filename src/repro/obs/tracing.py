"""Span-based structured tracing with JSONL export.

A *span* is a named interval on one of two clocks:

* ``"sim"`` — simulated device seconds, the experiment metric.  Device
  IOs and tree operations record sim spans: their start/end come from the
  device clock, so the trace reconstructs exactly what the simulator
  priced, free of interpreter noise.
* ``"wall"`` — host wall-clock seconds (:func:`time.perf_counter`).
  Orchestration layers (the sweep runner) record wall spans: their cost
  *is* interpreter time.

The JSONL format (one JSON object per line, header first) is part of the
public schema — see docs/observability.md — so exported traces feed
external tooling without knowing anything about this package:

    {"type": "header", "schema": "repro.obs.trace/v1", "n_spans": 2, "n_dropped": 0}
    {"type": "span", "name": "device.read", "clock": "sim", "start": 0.0, "end": 0.01, "attrs": {...}}

The buffer is bounded (default one million spans); once full, further
spans are counted in ``n_dropped`` rather than silently lost or allowed
to exhaust memory on a long run.
"""

from __future__ import annotations

import json
import math
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Iterator

from repro.errors import ConfigurationError

#: Version tag written into every trace header.
TRACE_SCHEMA = "repro.obs.trace/v1"

_VALID_CLOCKS = ("sim", "wall")


@dataclass(frozen=True)
class SpanRecord:
    """One completed span."""

    name: str
    clock: str           # "sim" or "wall"
    start: float
    end: float
    attrs: dict[str, Any] = field(default_factory=dict)

    @property
    def duration(self) -> float:
        """Seconds the span covered, on its own clock."""
        return self.end - self.start


class Tracer:
    """Bounded in-memory span buffer.

    Parameters
    ----------
    max_spans:
        Buffer capacity; spans past it are dropped (and counted) so an
        unexpectedly IO-heavy run degrades to a truncated trace instead
        of unbounded memory growth.
    """

    def __init__(self, max_spans: int = 1_000_000) -> None:
        if max_spans <= 0:
            raise ConfigurationError(f"max_spans must be positive, got {max_spans}")
        self.max_spans = int(max_spans)
        # Raw (name, clock, start, end, attrs) tuples: recording is a hot
        # path (one span per device IO), and a plain tuple append is several
        # times cheaper than constructing a frozen dataclass.  SpanRecord
        # objects are materialized lazily via the ``spans`` property.
        self._spans: list[tuple[str, str, float, float, dict[str, Any]]] = []
        self.n_dropped = 0

    def record(
        self, name: str, start: float, end: float, *, clock: str = "sim", **attrs: Any
    ) -> None:
        """Append one completed span (no-op past capacity, but counted)."""
        if clock not in _VALID_CLOCKS:
            raise ConfigurationError(f"unknown span clock {clock!r}")
        self.record_span(name, start, end, clock, attrs)

    def record_span(
        self, name: str, start: float, end: float, clock: str, attrs: dict[str, Any]
    ) -> None:
        """Hot-path variant of :meth:`record`: takes attrs as a dict the
        caller already built (no repacking) and trusts the clock value."""
        if len(self._spans) >= self.max_spans:
            self.n_dropped += 1
            return
        self._spans.append((name, clock, start, end, attrs))

    @property
    def spans(self) -> list[SpanRecord]:
        """Buffered spans as :class:`SpanRecord` objects (built on demand)."""
        return [SpanRecord(*t) for t in self._spans]

    @contextmanager
    def span(self, name: str, **attrs: Any) -> Iterator[None]:
        """Wall-clock span around a code block."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, start, time.perf_counter(), clock="wall", **attrs)

    def clear(self) -> None:
        """Drop all buffered spans and the drop counter."""
        self._spans = []
        self.n_dropped = 0

    def __len__(self) -> int:
        return len(self._spans)

    # -- JSONL export ---------------------------------------------------------

    def to_jsonl(self) -> str:
        """Serialize buffered spans to JSONL text (header line first)."""
        lines = [
            json.dumps(
                {
                    "type": "header",
                    "schema": TRACE_SCHEMA,
                    "n_spans": len(self._spans),
                    "n_dropped": self.n_dropped,
                },
                sort_keys=True,
            )
        ]
        for name, clock, start, end, attrs in self._spans:
            lines.append(
                json.dumps(
                    {
                        "type": "span",
                        "name": name,
                        "clock": clock,
                        "start": start,
                        "end": end,
                        "attrs": attrs,
                    },
                    sort_keys=True,
                )
            )
        return "\n".join(lines) + "\n"

    def export_jsonl(self, path: str | Path) -> Path:
        """Write :meth:`to_jsonl` to ``path``; returns the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_jsonl())
        return path


def spans_from_jsonl(text: str) -> list[SpanRecord]:
    """Parse and validate JSONL trace text back into span records.

    Raises :class:`~repro.errors.ConfigurationError` on a missing/alien
    header, unknown record types, bad clocks, or inconsistent times — the
    same strictness the CSV trace loader applies, so a trace that loads is
    a trace that is safe to analyze.
    """
    lines = [ln for ln in text.splitlines() if ln.strip()]
    if not lines:
        raise ConfigurationError("empty trace: no header line")
    header = json.loads(lines[0])
    if header.get("type") != "header" or header.get("schema") != TRACE_SCHEMA:
        raise ConfigurationError(f"bad trace header: {lines[0]!r}")
    out: list[SpanRecord] = []
    for ln in lines[1:]:
        rec = json.loads(ln)
        if rec.get("type") != "span":
            raise ConfigurationError(f"unknown trace record type: {ln!r}")
        name, clock = rec.get("name"), rec.get("clock")
        start, end = rec.get("start"), rec.get("end")
        if not isinstance(name, str) or not name:
            raise ConfigurationError(f"span without a name: {ln!r}")
        if clock not in _VALID_CLOCKS:
            raise ConfigurationError(f"bad span clock in: {ln!r}")
        if (
            not isinstance(start, (int, float))
            or not isinstance(end, (int, float))
            or not math.isfinite(start)
            or end < start
        ):
            raise ConfigurationError(f"inconsistent span times in: {ln!r}")
        attrs = rec.get("attrs", {})
        if not isinstance(attrs, dict):
            raise ConfigurationError(f"span attrs must be an object: {ln!r}")
        out.append(SpanRecord(name, clock, float(start), float(end), attrs))
    if int(header.get("n_spans", len(out))) != len(out):
        raise ConfigurationError(
            f"header claims {header.get('n_spans')} spans, file has {len(out)}"
        )
    return out


def read_jsonl(path: str | Path) -> list[SpanRecord]:
    """Load a trace file written by :meth:`Tracer.export_jsonl`."""
    return spans_from_jsonl(Path(path).read_text())
