"""Crash plans: deterministic whole-device failure points.

A :class:`CrashPlan` kills a device at a chosen IO ordinal or simulated
time.  Unlike the per-IO faults of :class:`~repro.faults.plan.FaultPlan`
(which perturb timings and let the run continue), a crash is terminal:
the in-flight IO never completes, the wrapping
:class:`~repro.faults.device.FaultyDevice` raises
:class:`~repro.errors.DeviceCrashed` and refuses all further IO until
``recover()`` is called — the simulation analogue of pulling the plug.

**Torn writes.** The block in flight when the plug is pulled is persisted
only up to a seeded fraction of its bytes (``torn=True``, the realistic
default) or not at all (``torn=False``, an atomic-block device).  The
fraction comes from the plan's own RNG stream, so the same plan tears the
same write at the same byte on every run — which is what lets the WAL's
torn-tail detection be tested deterministically.

Plans serialize to JSON (schema :data:`CRASH_SCHEMA`); the loader rejects
unknown schema versions and unknown fields by name, same contract as
:meth:`~repro.faults.plan.FaultPlan.from_json`.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

#: Schema tag written into exported crash plans, checked on load.
CRASH_SCHEMA = "repro.faults.crash/v1"


@dataclass(frozen=True)
class CrashState:
    """Frozen description of the IO a device died on.

    ``persisted_bytes`` is the torn-write result: how many bytes of the
    in-flight write reached the platter (always 0 for reads, and always
    strictly fewer than ``nbytes`` — the IO did not complete).
    """

    ordinal: int
    at_seconds: float
    kind: str
    offset: int
    nbytes: int
    persisted_bytes: int

    def describe(self) -> dict[str, Any]:
        """Stable JSON-able identity."""
        return asdict(self)


@dataclass(frozen=True)
class CrashPlan:
    """When a device dies, and how much of the in-flight write survives.

    Parameters
    ----------
    seed:
        Seed of the torn-write RNG stream (independent of the fault-plan
        and every workload/device stream).
    at_io:
        Crash on the ``at_io``-th IO (0-based ordinal, counted from the
        moment the plan is armed).  Exactly one of ``at_io``/``at_seconds``
        must be set.
    at_seconds:
        Crash on the first IO issued at or after this simulated time
        (the armed device's own clock).
    torn:
        Whether the in-flight write is torn (persisted up to a seeded
        uniform fraction of its bytes) or lost atomically.
    """

    seed: int = 0
    at_io: int | None = None
    at_seconds: float | None = None
    torn: bool = True

    def __post_init__(self) -> None:
        if (self.at_io is None) == (self.at_seconds is None):
            raise ConfigurationError(
                "exactly one of at_io / at_seconds must be set, got "
                f"at_io={self.at_io!r}, at_seconds={self.at_seconds!r}"
            )
        if self.at_io is not None and self.at_io < 0:
            raise ConfigurationError(f"at_io must be >= 0, got {self.at_io}")
        if self.at_seconds is not None and self.at_seconds < 0:
            raise ConfigurationError(
                f"at_seconds must be >= 0, got {self.at_seconds}"
            )

    def fires_at(self, ordinal: int, at: float) -> bool:
        """Whether the IO with this ordinal/start time is the crash point."""
        if self.at_io is not None:
            return ordinal >= self.at_io
        return at >= self.at_seconds

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON of this plan (schema: docs/faults.md)."""
        payload: dict[str, Any] = {"schema": CRASH_SCHEMA}
        payload.update(asdict(self))
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "CrashPlan":
        """Parse a plan exported by :meth:`to_json`; fails loudly.

        Unknown schema versions and unknown top-level fields raise a
        :class:`~repro.errors.ConfigurationError` (a :class:`ValueError`)
        naming the offending field — a typo in a crash plan must never
        silently produce a run that doesn't crash.
        """
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"crash plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("crash plan JSON must be an object")
        schema = payload.pop("schema", CRASH_SCHEMA)
        if schema != CRASH_SCHEMA:
            raise ConfigurationError(
                f"unknown crash-plan schema {schema!r} (expected {CRASH_SCHEMA!r})"
            )
        unknown = set(payload) - set(cls.__dataclass_fields__)
        if unknown:
            raise ConfigurationError(f"unknown crash-plan fields: {sorted(unknown)}")
        return cls(**payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "CrashPlan":
        """Load a plan from a JSON file."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read crash plan {path}: {exc}") from exc
        return cls.from_json(text)

    def describe(self) -> dict[str, Any]:
        """Stable JSON-able identity (for device fingerprints)."""
        return asdict(self)
