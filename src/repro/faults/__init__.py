"""repro.faults — deterministic fault injection and resilient IO policies.

The robustness layer of the simulator:

* :class:`~repro.faults.plan.FaultPlan` — a seeded, JSON-serializable
  description of device misbehavior (latency spikes, transient errors,
  degraded phases, PDAM channel stalls);
* :class:`~repro.faults.device.FaultyDevice` — wraps any
  :class:`~repro.storage.device.BlockDevice` and injects the plan from
  its own RNG stream, so fault-free runs stay byte-identical;
* :class:`~repro.faults.policy.ResiliencePolicy` — retry-with-backoff
  and hedged reads, interpreted by the faulty device, the storage stack
  and the closed-loop engine;
* :class:`~repro.faults.crash.CrashPlan` — deterministic whole-device
  crash points with torn-write semantics, the fault model behind the
  :mod:`repro.recovery` durability layer.

See docs/faults.md for the plan schema, the policy knobs, and the
determinism guarantee; experiment E18 (``tailres``) measures the
policies' effect on tail latency.
"""

from repro.faults.crash import CRASH_SCHEMA, CrashPlan, CrashState
from repro.faults.device import FaultyDevice
from repro.faults.plan import PLAN_SCHEMA, DegradedPhase, FaultPlan
from repro.faults.policy import POLICY_NAMES, FaultStats, ResiliencePolicy

__all__ = [
    "CRASH_SCHEMA",
    "PLAN_SCHEMA",
    "POLICY_NAMES",
    "CrashPlan",
    "CrashState",
    "DegradedPhase",
    "FaultPlan",
    "FaultStats",
    "FaultyDevice",
    "ResiliencePolicy",
]
