"""Resilience policies: what the storage stack does when IOs misbehave.

Two mechanisms, composable in one :class:`ResiliencePolicy`:

* **Retry with exponential backoff** — a transient error
  (:class:`~repro.errors.TransientIOError`) is retried up to
  ``max_retries`` times; attempt ``i`` waits ``backoff_seconds *
  backoff_multiplier**i`` first, and the whole ladder stops once the
  per-IO ``timeout_seconds`` budget is exhausted.  Backoff waits are
  simulated time, charged like any other latency.
* **Hedged reads** — when a read runs past ``hedge_deadline_seconds``, a
  duplicate IO is issued and the first completion wins.  This is the
  PDAM-motivated move (PAPER.md Definition 1): slots among the ``P``
  parallel IOs a step leaves unused are wasted anyway, so spending one on
  a duplicate costs no throughput below the knee and converts the fault
  distribution's tail from "one draw" to "min of two draws".

Policies are inert by themselves — :class:`~repro.faults.device.FaultyDevice`
and :class:`~repro.storage.engine.ClosedLoopRunner` interpret them — and a
:meth:`ResiliencePolicy.none` policy is a guaranteed no-op.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any

from repro.errors import ConfigurationError

#: CLI spellings of the stock policies (``--policy {none,retry,hedge}``).
POLICY_NAMES = ("none", "retry", "hedge")


@dataclass(frozen=True)
class ResiliencePolicy:
    """Retry and hedging knobs for one storage stack.

    ``max_retries == 0`` disables retries; an infinite
    ``hedge_deadline_seconds`` disables hedging.  The stock
    constructors — :meth:`none`, :meth:`retry`, :meth:`hedged` — cover the
    three CLI policies; ``hedged`` keeps retries on because a hedge
    policy that loses ops to transient errors would be strictly worse
    than retry.
    """

    name: str = "none"
    max_retries: int = 0
    backoff_seconds: float = 0.0
    backoff_multiplier: float = 2.0
    timeout_seconds: float = math.inf
    hedge_deadline_seconds: float = math.inf

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ConfigurationError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.max_retries > 0 and self.backoff_seconds <= 0:
            raise ConfigurationError(
                f"retries need backoff_seconds > 0, got {self.backoff_seconds}"
            )
        if self.backoff_seconds < 0:
            raise ConfigurationError(
                f"backoff_seconds must be non-negative, got {self.backoff_seconds}"
            )
        if self.backoff_multiplier < 1.0:
            raise ConfigurationError(
                f"backoff_multiplier must be >= 1, got {self.backoff_multiplier}"
            )
        if self.timeout_seconds <= 0:
            raise ConfigurationError(
                f"timeout_seconds must be positive, got {self.timeout_seconds}"
            )
        if self.hedge_deadline_seconds <= 0:
            raise ConfigurationError(
                f"hedge_deadline_seconds must be positive, got {self.hedge_deadline_seconds}"
            )

    # -- stock policies ------------------------------------------------------

    @classmethod
    def none(cls) -> "ResiliencePolicy":
        """Do nothing: errors propagate, spikes run to completion."""
        return cls(name="none")

    @classmethod
    def retry(
        cls,
        *,
        max_retries: int = 4,
        backoff_seconds: float = 1e-3,
        backoff_multiplier: float = 2.0,
        timeout_seconds: float = math.inf,
    ) -> "ResiliencePolicy":
        """Retry transient errors with exponential backoff; no hedging."""
        return cls(
            name="retry",
            max_retries=max_retries,
            backoff_seconds=backoff_seconds,
            backoff_multiplier=backoff_multiplier,
            timeout_seconds=timeout_seconds,
        )

    @classmethod
    def hedged(
        cls,
        hedge_deadline_seconds: float,
        *,
        max_retries: int = 4,
        backoff_seconds: float = 1e-3,
        backoff_multiplier: float = 2.0,
        timeout_seconds: float = math.inf,
    ) -> "ResiliencePolicy":
        """Hedge slow reads past the deadline, and retry errors too."""
        return cls(
            name="hedge",
            max_retries=max_retries,
            backoff_seconds=backoff_seconds,
            backoff_multiplier=backoff_multiplier,
            timeout_seconds=timeout_seconds,
            hedge_deadline_seconds=hedge_deadline_seconds,
        )

    # -- queries -------------------------------------------------------------

    @property
    def retries_enabled(self) -> bool:
        """Whether transient errors are retried at all."""
        return self.max_retries > 0

    @property
    def hedge_enabled(self) -> bool:
        """Whether slow reads are hedged at all."""
        return math.isfinite(self.hedge_deadline_seconds)

    @property
    def is_noop(self) -> bool:
        """Whether this policy can never change an IO's outcome."""
        return not self.retries_enabled and not self.hedge_enabled

    def describe(self) -> dict[str, Any]:
        """Stable JSON-able identity (infinities become None)."""
        d = asdict(self)
        for key in ("timeout_seconds", "hedge_deadline_seconds"):
            if math.isinf(d[key]):
                d[key] = None
        return d


@dataclass
class FaultStats:
    """Plain counters of faults seen and policy actions taken.

    Kept directly on the injecting/reacting component so fault accounting
    works inside forked sweep workers, where the process-global
    :data:`repro.obs.OBS` registry is unavailable; when observability is
    enabled the same events also land on OBS (``faults.injected``,
    ``io.retries``, ``io.hedge_wins``, …).
    """

    spikes_injected: int = 0
    errors_injected: int = 0
    stalls_injected: int = 0
    crashes: int = 0
    retries: int = 0
    retry_giveups: int = 0
    hedges_issued: int = 0
    hedge_wins: int = 0

    @property
    def faults_injected(self) -> int:
        """Total faults of every kind."""
        return (
            self.spikes_injected
            + self.errors_injected
            + self.stalls_injected
            + self.crashes
        )

    def reset(self) -> None:
        """Zero every counter (fresh experiment)."""
        for f in self.__dataclass_fields__:
            setattr(self, f, 0)
