"""Fault plans: seeded, declarative descriptions of device misbehavior.

A :class:`FaultPlan` says *what can go wrong* — heavy-tailed latency
spikes, transient IO errors, timed degraded-bandwidth phases, and (on
PDAM devices) per-channel stalls — and carries its own RNG seed so fault
injection draws from a stream entirely separate from workload and device
randomness.  Two consequences, both load-bearing:

* **Determinism.** The same plan on the same workload injects the same
  faults, IO for IO, so a fault experiment is as reproducible as a
  fault-free one.
* **Isolation.** A plan with every probability at zero never touches its
  RNG, so wrapping a device in a zero plan (or attaching no plan at all)
  leaves every simulated timing byte-identical to bare hardware — the
  invariant ``tests/faults/test_identity.py`` pins.

Plans serialize to JSON (``--faults PLAN.json`` on the experiment CLI);
the schema is frozen in docs/faults.md.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any

from repro.errors import ConfigurationError

#: Schema tag written into exported plans, checked on load.
PLAN_SCHEMA = "repro.faults.plan/v1"


@dataclass(frozen=True)
class DegradedPhase:
    """A timed window of reduced device speed.

    Between ``start_seconds`` and ``end_seconds`` (simulated device time,
    half-open interval) every IO's service time is multiplied by
    ``slowdown`` — the whole-device analogue of an SSD entering thermal
    throttling or a background GC phase.
    """

    start_seconds: float
    end_seconds: float
    slowdown: float

    def __post_init__(self) -> None:
        if self.start_seconds < 0 or self.end_seconds <= self.start_seconds:
            raise ConfigurationError(
                f"degraded phase needs 0 <= start < end, got "
                f"[{self.start_seconds}, {self.end_seconds})"
            )
        if self.slowdown < 1.0:
            raise ConfigurationError(
                f"slowdown must be >= 1 (a speedup is not a fault), got {self.slowdown}"
            )

    def active_at(self, at: float) -> bool:
        """Whether simulated time ``at`` falls inside this phase."""
        return self.start_seconds <= at < self.end_seconds


@dataclass(frozen=True)
class FaultPlan:
    """What faults to inject, with what probability, from what seed.

    Parameters
    ----------
    seed:
        Seed of the fault RNG stream.  Independent of every workload and
        device seed by construction (it feeds its own generator).
    spike_prob:
        Per-IO probability of a latency spike.
    spike_seconds:
        Scale of the spike: extra latency is ``spike_seconds * (1 + X)``
        with ``X`` Pareto-distributed — heavy-tailed, so a small minority
        of spikes are much larger than the median, which is exactly the
        p99-vs-mean gap the resilience policies attack.
    spike_alpha:
        Pareto tail index; smaller means heavier tails.
    error_prob:
        Per-IO probability of a transient failure.  The IO runs (its time
        is charged) and then raises
        :class:`~repro.errors.TransientIOError`; a retry may succeed.
    degraded:
        Timed :class:`DegradedPhase` windows (sorted by start time).
    stall_prob:
        PDAM only — per-channel, per-step probability that a channel
        stalls (see :class:`~repro.storage.scheduler.ReadAheadScheduler`).
    stall_steps:
        Maximum extra steps a single channel stall lasts (uniform on
        ``1..stall_steps``).
    """

    seed: int = 0
    spike_prob: float = 0.0
    spike_seconds: float = 0.0
    spike_alpha: float = 1.5
    error_prob: float = 0.0
    degraded: tuple[DegradedPhase, ...] = field(default=())
    stall_prob: float = 0.0
    stall_steps: int = 8

    def __post_init__(self) -> None:
        for name in ("spike_prob", "error_prob", "stall_prob"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ConfigurationError(f"{name} must be in [0, 1], got {p}")
        if self.spike_seconds < 0:
            raise ConfigurationError(
                f"spike_seconds must be non-negative, got {self.spike_seconds}"
            )
        if self.spike_prob > 0 and self.spike_seconds == 0:
            raise ConfigurationError("spike_prob > 0 needs spike_seconds > 0")
        if self.spike_alpha <= 0:
            raise ConfigurationError(f"spike_alpha must be positive, got {self.spike_alpha}")
        if self.stall_steps < 1:
            raise ConfigurationError(f"stall_steps must be >= 1, got {self.stall_steps}")
        object.__setattr__(self, "degraded", tuple(self.degraded))
        for phase in self.degraded:
            if not isinstance(phase, DegradedPhase):
                raise ConfigurationError(
                    f"degraded entries must be DegradedPhase, got {type(phase).__name__}"
                )

    # -- queries -------------------------------------------------------------

    @property
    def injects_anything(self) -> bool:
        """Whether this plan can ever perturb a timing."""
        return bool(
            self.spike_prob or self.error_prob or self.stall_prob or self.degraded
        )

    def slowdown_at(self, at: float) -> float:
        """Combined slowdown multiplier of the phases active at ``at``."""
        factor = 1.0
        for phase in self.degraded:
            if phase.active_at(at):
                factor *= phase.slowdown
        return factor

    def scaled(self, intensity: float) -> "FaultPlan":
        """This plan with every probability scaled by ``intensity``.

        Probabilities clamp at 1.0; ``intensity=0`` yields a plan that
        injects nothing.  Used by E18 to sweep fault intensity from one
        base plan.
        """
        if intensity < 0:
            raise ConfigurationError(f"intensity must be non-negative, got {intensity}")
        return FaultPlan(
            seed=self.seed,
            spike_prob=min(1.0, self.spike_prob * intensity),
            spike_seconds=self.spike_seconds,
            spike_alpha=self.spike_alpha,
            error_prob=min(1.0, self.error_prob * intensity),
            degraded=self.degraded,
            stall_prob=min(1.0, self.stall_prob * intensity),
            stall_steps=self.stall_steps,
        )

    # -- serialization -------------------------------------------------------

    def to_json(self) -> str:
        """Canonical JSON of this plan (schema: docs/faults.md)."""
        payload: dict[str, Any] = {"schema": PLAN_SCHEMA}
        payload.update(asdict(self))
        payload["degraded"] = [asdict(p) for p in self.degraded]
        return json.dumps(payload, sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        """Parse a plan exported by :meth:`to_json`; validates the schema."""
        try:
            payload = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}") from exc
        if not isinstance(payload, dict):
            raise ConfigurationError("fault plan JSON must be an object")
        schema = payload.pop("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise ConfigurationError(
                f"unknown fault-plan schema {schema!r} (expected {PLAN_SCHEMA!r})"
            )
        phases = payload.pop("degraded", [])
        if not isinstance(phases, list):
            raise ConfigurationError("'degraded' must be a list of phase objects")
        known = {f for f in cls.__dataclass_fields__ if f != "degraded"}
        unknown = set(payload) - known
        if unknown:
            raise ConfigurationError(f"unknown fault-plan fields: {sorted(unknown)}")
        phase_fields = set(DegradedPhase.__dataclass_fields__)
        for i, p in enumerate(phases):
            if not isinstance(p, dict):
                raise ConfigurationError(
                    f"degraded[{i}] must be an object, got {type(p).__name__}"
                )
            bad = set(p) - phase_fields
            if bad:
                raise ConfigurationError(
                    f"unknown degraded-phase fields in degraded[{i}]: {sorted(bad)}"
                )
        try:
            degraded = tuple(DegradedPhase(**p) for p in phases)
        except TypeError as exc:
            raise ConfigurationError(f"bad degraded phase: {exc}") from exc
        return cls(degraded=degraded, **payload)

    @classmethod
    def from_file(cls, path: str | Path) -> "FaultPlan":
        """Load a plan from a JSON file (the CLI's ``--faults PLAN.json``)."""
        try:
            text = Path(path).read_text()
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}") from exc
        return cls.from_json(text)

    def describe(self) -> dict[str, Any]:
        """Stable JSON-able identity (for device fingerprints)."""
        d = asdict(self)
        d["degraded"] = [asdict(p) for p in self.degraded]
        return d
