"""Deterministic fault injection around any block device.

:class:`FaultyDevice` wraps a :class:`~repro.storage.device.BlockDevice`
and perturbs its timings according to a :class:`~repro.faults.plan.FaultPlan`,
optionally reacting with a :class:`~repro.faults.policy.ResiliencePolicy`:

* **latency spikes** — Pareto-tailed extra latency on a per-IO coin flip;
* **transient errors** — the IO runs, its time is charged to the inner
  device, then :class:`~repro.errors.TransientIOError` is raised (or the
  IO is retried with backoff, under the policy's budget);
* **degraded phases** — timed windows multiplying service time;
* **hedged reads** — when a read (base + spike) would run past the
  policy's deadline, a duplicate is issued at the deadline and the first
  completion wins.  The duplicate is a real IO: it charges the inner
  device again, which on a PDAM device burns one of the otherwise wasted
  parallel slots — the model-driven resilience move.

Determinism: all fault decisions come from the plan's own RNG stream,
touched *only* when the corresponding probability is positive.  A plan
with every probability at zero therefore leaves the wrapper's timings —
and the inner device's RNG position — byte-identical to the unwrapped
device.

Accounting: the wrapper keeps its own clock and
:class:`~repro.storage.device.DeviceStats` (what experiments read, faults
included); the inner device accumulates the raw attempts, so
``inner.stats.reads`` exceeds the wrapper's exactly by the retried and
hedged IOs.  A retry-exhausted IO propagates its error without advancing
the wrapper clock — the op failed; its wasted device time is visible on
the inner stats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, DeviceCrashed, TransientIOError
from repro.faults.crash import CrashPlan, CrashState
from repro.faults.plan import FaultPlan
from repro.faults.policy import FaultStats, ResiliencePolicy
from repro.obs import OBS
from repro.storage.device import BlockDevice, IORecord


class FaultyDevice(BlockDevice):
    """A block device that misbehaves on schedule.

    Parameters
    ----------
    inner:
        The device whose timings are being perturbed.  Must be freshly
        constructed or reset — the wrapper assumes the clocks start
        together.
    plan:
        What to inject (see :class:`~repro.faults.plan.FaultPlan`).
    policy:
        How to react (default: :meth:`ResiliencePolicy.none`).
    crash:
        Optional :class:`~repro.faults.crash.CrashPlan`: die at a chosen
        IO ordinal or simulated time.  The crashed device raises
        :class:`~repro.errors.DeviceCrashed` on every IO until
        :meth:`recover` is called; a plan fires at most once per arming.
    """

    def __init__(
        self,
        inner: BlockDevice,
        plan: FaultPlan,
        *,
        policy: ResiliencePolicy | None = None,
        crash: CrashPlan | None = None,
        trace: bool = False,
    ) -> None:
        if isinstance(inner, FaultyDevice):
            raise ConfigurationError("nesting FaultyDevice wrappers is not supported")
        super().__init__(inner.capacity_bytes, trace=trace)
        self.inner = inner
        self.plan = plan
        self.policy = policy if policy is not None else ResiliencePolicy.none()
        self.fault_stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)
        self.recoveries = 0
        self.arm_crash(crash)

    # -- crash lifecycle -----------------------------------------------------

    def arm_crash(self, crash: CrashPlan | None) -> None:
        """(Re-)arm a crash plan; ``None`` disarms.

        Resets the IO ordinal to 0, so ``at_io`` counts IOs issued from
        this moment on — which is how the serve layer arms crashes only
        after load and warm-up.  Clears any existing crashed state.
        """
        self.crash = crash
        self._crash_rng = (
            np.random.default_rng(crash.seed) if crash is not None else None
        )
        self._crashed: CrashState | None = None
        self._crash_spent = False
        self._io_ordinal = 0

    @property
    def crashed(self) -> bool:
        """Whether the device is down (refusing IO until :meth:`recover`)."""
        return self._crashed is not None

    @property
    def crash_state(self) -> CrashState | None:
        """The IO the device died on, if it is (or was last) crashed."""
        return self._crashed

    @property
    def io_ordinal(self) -> int:
        """IOs issued since the crash plan was (dis)armed (crash-point space)."""
        return self._io_ordinal

    def recover(self) -> CrashState:
        """Bring a crashed device back; returns the crash it recovers from.

        The plan is spent: the device will not crash again until
        :meth:`arm_crash` or :meth:`reset` re-arms it.  Recovery itself is
        free at this layer — the *recovery IO* (log scan, replay) is real
        traffic the caller issues afterwards.
        """
        if self._crashed is None:
            raise ConfigurationError("recover() on a device that is not crashed")
        state = self._crashed
        self._crashed = None
        self._crash_spent = True
        self.recoveries += 1
        return state

    def _maybe_crash(self, kind: str, offset: int, nbytes: int, at: float) -> None:
        """Raise :class:`DeviceCrashed` if this IO is (or follows) the crash."""
        if self._crashed is not None:
            raise DeviceCrashed(
                f"device is crashed (since IO {self._crashed.ordinal}); "
                "call recover() before issuing IO",
                self._crashed,
            )
        crash = self.crash
        if crash is None or self._crash_spent:
            return
        if not crash.fires_at(self._io_ordinal, at):
            return
        persisted = 0
        if kind == "write" and crash.torn:
            # The torn fraction comes from the crash plan's own stream, so
            # the fault-plan RNG position stays byte-identical to a
            # crash-free run right up to the crash point.
            persisted = int(float(self._crash_rng.random()) * nbytes)
        state = CrashState(
            ordinal=self._io_ordinal,
            at_seconds=at,
            kind=kind,
            offset=offset,
            nbytes=nbytes,
            persisted_bytes=persisted,
        )
        self._crashed = state
        self.fault_stats.crashes += 1
        if OBS.enabled:
            OBS.counter("faults.injected").inc()
            OBS.counter("faults.crashes").inc()
        raise DeviceCrashed(
            f"device crashed on {kind} #{state.ordinal} at offset {offset} "
            f"({persisted}/{nbytes} bytes persisted)",
            state,
        )

    # -- fault pipeline ------------------------------------------------------

    def _draw_spike(self) -> float:
        """Extra seconds of a latency spike (0.0 when the coin says no).

        Touches the RNG only when spikes are enabled; a spike draws once
        for the coin and once for the Pareto magnitude.
        """
        plan = self.plan
        if plan.spike_prob <= 0.0:
            return 0.0
        if self._rng.random() >= plan.spike_prob:
            return 0.0
        magnitude = plan.spike_seconds * (1.0 + float(self._rng.pareto(plan.spike_alpha)))
        self.fault_stats.spikes_injected += 1
        if OBS.enabled:
            OBS.counter("faults.injected").inc()
            OBS.counter("faults.spikes").inc()
            OBS.histogram("faults.spike_seconds").record(magnitude)
        return magnitude

    def _draw_error(self) -> bool:
        """Whether this attempt fails transiently (RNG touched only if enabled)."""
        plan = self.plan
        if plan.error_prob <= 0.0:
            return False
        if self._rng.random() >= plan.error_prob:
            return False
        self.fault_stats.errors_injected += 1
        if OBS.enabled:
            OBS.counter("faults.injected").inc()
            OBS.counter("faults.errors").inc()
        return True

    def _service(self, kind: str, offset: int, nbytes: int, at: float) -> float:
        """One resilient IO: inject faults, apply the policy, price the result.

        Returns the completion time; raises :class:`TransientIOError` when
        an injected error survives the retry budget.
        """
        self._maybe_crash(kind, offset, nbytes, at)
        self._io_ordinal += 1
        plan, policy = self.plan, self.policy
        inner_io = self.inner.read if kind == "read" else self.inner.write
        factor = plan.slowdown_at(at) if plan.degraded else 1.0
        spent = 0.0  # seconds this op has consumed so far (attempts + waits)
        backoff = policy.backoff_seconds
        attempt = 0
        while True:
            base = inner_io(offset, nbytes)
            errored = self._draw_error()
            if not errored:
                break
            # The failed attempt ran to completion before failing: its
            # device time is part of the op, whatever happens next.
            spent += base * factor
            if (
                not policy.retries_enabled
                or attempt >= policy.max_retries
                or spent + backoff > policy.timeout_seconds
            ):
                self.fault_stats.retry_giveups += 1
                if OBS.enabled:
                    OBS.counter("io.retry_giveups").inc()
                raise TransientIOError(
                    f"injected transient {kind} failure at offset {offset} "
                    f"(attempt {attempt + 1}, {spent:.3g}s spent)"
                )
            spent += backoff
            backoff *= policy.backoff_multiplier
            attempt += 1
            self.fault_stats.retries += 1
            if OBS.enabled:
                OBS.counter("io.retries").inc()

        service = base * factor + self._draw_spike()
        if (
            kind == "read"
            and policy.hedge_enabled
            and service > policy.hedge_deadline_seconds
        ):
            # Issue a duplicate at the deadline; first completion wins.
            # The duplicate is a full second IO (charged to the inner
            # device — on a PDAM this is the spare-slot spend) and draws
            # its own spike, so hedging turns the tail into min-of-two.
            self.fault_stats.hedges_issued += 1
            dup = policy.hedge_deadline_seconds + inner_io(offset, nbytes) * factor
            dup += self._draw_spike()
            if OBS.enabled:
                OBS.counter("io.hedges_issued").inc()
            if dup < service:
                service = dup
                self.fault_stats.hedge_wins += 1
                if OBS.enabled:
                    OBS.counter("io.hedge_wins").inc()
        return at + spent + service

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._service("read", offset, nbytes, at)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return self._service("write", offset, nbytes, at)

    # -- batched IO ----------------------------------------------------------

    def _batch_is_transparent(self, kind: str) -> bool:
        """Whether the fault pipeline is a no-op for IOs of ``kind``.

        With no spikes, no errors and no degraded phases, :meth:`_service`
        never touches the plan RNG or the fault counters, and its pricing
        collapses to ``at + 0.0 + (base * 1.0 + 0.0)`` — exactly
        ``at + base``.  Hedging can still fire without faults (a slow clean
        read past the deadline), so reads additionally require it off;
        writes are never hedged.  An armed (unspent) crash plan — or an
        already-crashed device — also disables the fast path: every IO of
        the batch must run the per-IO pipeline so the crash lands on the
        same ordinal, with the same torn-write draw, as a serial loop.
        """
        plan = self.plan
        if self._crashed is not None or (
            self.crash is not None and not self._crash_spent
        ):
            return False
        return (
            plan.spike_prob <= 0.0
            and plan.error_prob <= 0.0
            and not plan.degraded
            and (kind == "write" or not self.policy.hedge_enabled)
        )

    def read_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched reads; bit-identical to a serial loop of :meth:`read`.

        When the fault pipeline is transparent (see
        :meth:`_batch_is_transparent`), the inner device's own batch path
        services the run and this wrapper does only its bookkeeping;
        otherwise each IO runs the full per-IO pipeline so the plan's RNG
        stream advances exactly as a serial loop would.
        """
        if not self._batch_is_transparent("read"):
            return super().read_batch(offsets, nbytes)
        offs = [int(o) for o in offsets]
        for off in offs:
            self._check(off, nbytes)
        bases = self.inner.read_batch(offs, nbytes)
        stats = self.stats
        out: list[float] = []
        for off, base in zip(offs, bases):
            self._io_ordinal += 1
            start = self.clock
            end = start + base
            elapsed = end - start
            self.clock = end
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.read_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("read", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "read")
            if OBS.enabled:
                self._obs_io("read", off, nbytes, start, end)
            out.append(elapsed)
        return out

    def write_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched writes; bit-identical to a serial loop of :meth:`write`."""
        if not self._batch_is_transparent("write"):
            return super().write_batch(offsets, nbytes)
        offs = [int(o) for o in offsets]
        for off in offs:
            self._check(off, nbytes)
        bases = self.inner.write_batch(offs, nbytes)
        stats = self.stats
        out: list[float] = []
        for off, base in zip(offs, bases):
            self._io_ordinal += 1
            start = self.clock
            end = start + base
            elapsed = end - start
            self.clock = end
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.write_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("write", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "write")
            if OBS.enabled:
                self._obs_io("write", off, nbytes, start, end)
            out.append(elapsed)
        return out

    # -- identity and lifecycle ----------------------------------------------

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(
            inner=self.inner.describe(),
            plan=self.plan.describe(),
            policy=self.policy.describe(),
        )
        if self.crash is not None:
            d["crash"] = self.crash.describe()
        return d

    def reset(self) -> None:
        """Reset wrapper clock/stats, fault counters, RNGs, and the inner device.

        Re-arms the crash plan (spent or not): a reset device is a fresh
        run, so the plan fires again at the same point.
        """
        super().reset()
        self.inner.reset()
        self.fault_stats.reset()
        self._rng = np.random.default_rng(self.plan.seed)
        self.recoveries = 0
        self.arm_crash(self.crash)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultyDevice({self.inner!r}, plan.seed={self.plan.seed}, "
            f"policy={self.policy.name})"
        )
