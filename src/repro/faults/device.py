"""Deterministic fault injection around any block device.

:class:`FaultyDevice` wraps a :class:`~repro.storage.device.BlockDevice`
and perturbs its timings according to a :class:`~repro.faults.plan.FaultPlan`,
optionally reacting with a :class:`~repro.faults.policy.ResiliencePolicy`:

* **latency spikes** — Pareto-tailed extra latency on a per-IO coin flip;
* **transient errors** — the IO runs, its time is charged to the inner
  device, then :class:`~repro.errors.TransientIOError` is raised (or the
  IO is retried with backoff, under the policy's budget);
* **degraded phases** — timed windows multiplying service time;
* **hedged reads** — when a read (base + spike) would run past the
  policy's deadline, a duplicate is issued at the deadline and the first
  completion wins.  The duplicate is a real IO: it charges the inner
  device again, which on a PDAM device burns one of the otherwise wasted
  parallel slots — the model-driven resilience move.

Determinism: all fault decisions come from the plan's own RNG stream,
touched *only* when the corresponding probability is positive.  A plan
with every probability at zero therefore leaves the wrapper's timings —
and the inner device's RNG position — byte-identical to the unwrapped
device.

Accounting: the wrapper keeps its own clock and
:class:`~repro.storage.device.DeviceStats` (what experiments read, faults
included); the inner device accumulates the raw attempts, so
``inner.stats.reads`` exceeds the wrapper's exactly by the retried and
hedged IOs.  A retry-exhausted IO propagates its error without advancing
the wrapper clock — the op failed; its wasted device time is visible on
the inner stats.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError, TransientIOError
from repro.faults.plan import FaultPlan
from repro.faults.policy import FaultStats, ResiliencePolicy
from repro.obs import OBS
from repro.storage.device import BlockDevice, IORecord


class FaultyDevice(BlockDevice):
    """A block device that misbehaves on schedule.

    Parameters
    ----------
    inner:
        The device whose timings are being perturbed.  Must be freshly
        constructed or reset — the wrapper assumes the clocks start
        together.
    plan:
        What to inject (see :class:`~repro.faults.plan.FaultPlan`).
    policy:
        How to react (default: :meth:`ResiliencePolicy.none`).
    """

    def __init__(
        self,
        inner: BlockDevice,
        plan: FaultPlan,
        *,
        policy: ResiliencePolicy | None = None,
        trace: bool = False,
    ) -> None:
        if isinstance(inner, FaultyDevice):
            raise ConfigurationError("nesting FaultyDevice wrappers is not supported")
        super().__init__(inner.capacity_bytes, trace=trace)
        self.inner = inner
        self.plan = plan
        self.policy = policy if policy is not None else ResiliencePolicy.none()
        self.fault_stats = FaultStats()
        self._rng = np.random.default_rng(plan.seed)

    # -- fault pipeline ------------------------------------------------------

    def _draw_spike(self) -> float:
        """Extra seconds of a latency spike (0.0 when the coin says no).

        Touches the RNG only when spikes are enabled; a spike draws once
        for the coin and once for the Pareto magnitude.
        """
        plan = self.plan
        if plan.spike_prob <= 0.0:
            return 0.0
        if self._rng.random() >= plan.spike_prob:
            return 0.0
        magnitude = plan.spike_seconds * (1.0 + float(self._rng.pareto(plan.spike_alpha)))
        self.fault_stats.spikes_injected += 1
        if OBS.enabled:
            OBS.counter("faults.injected").inc()
            OBS.counter("faults.spikes").inc()
            OBS.histogram("faults.spike_seconds").record(magnitude)
        return magnitude

    def _draw_error(self) -> bool:
        """Whether this attempt fails transiently (RNG touched only if enabled)."""
        plan = self.plan
        if plan.error_prob <= 0.0:
            return False
        if self._rng.random() >= plan.error_prob:
            return False
        self.fault_stats.errors_injected += 1
        if OBS.enabled:
            OBS.counter("faults.injected").inc()
            OBS.counter("faults.errors").inc()
        return True

    def _service(self, kind: str, offset: int, nbytes: int, at: float) -> float:
        """One resilient IO: inject faults, apply the policy, price the result.

        Returns the completion time; raises :class:`TransientIOError` when
        an injected error survives the retry budget.
        """
        plan, policy = self.plan, self.policy
        inner_io = self.inner.read if kind == "read" else self.inner.write
        factor = plan.slowdown_at(at) if plan.degraded else 1.0
        spent = 0.0  # seconds this op has consumed so far (attempts + waits)
        backoff = policy.backoff_seconds
        attempt = 0
        while True:
            base = inner_io(offset, nbytes)
            errored = self._draw_error()
            if not errored:
                break
            # The failed attempt ran to completion before failing: its
            # device time is part of the op, whatever happens next.
            spent += base * factor
            if (
                not policy.retries_enabled
                or attempt >= policy.max_retries
                or spent + backoff > policy.timeout_seconds
            ):
                self.fault_stats.retry_giveups += 1
                if OBS.enabled:
                    OBS.counter("io.retry_giveups").inc()
                raise TransientIOError(
                    f"injected transient {kind} failure at offset {offset} "
                    f"(attempt {attempt + 1}, {spent:.3g}s spent)"
                )
            spent += backoff
            backoff *= policy.backoff_multiplier
            attempt += 1
            self.fault_stats.retries += 1
            if OBS.enabled:
                OBS.counter("io.retries").inc()

        service = base * factor + self._draw_spike()
        if (
            kind == "read"
            and policy.hedge_enabled
            and service > policy.hedge_deadline_seconds
        ):
            # Issue a duplicate at the deadline; first completion wins.
            # The duplicate is a full second IO (charged to the inner
            # device — on a PDAM this is the spare-slot spend) and draws
            # its own spike, so hedging turns the tail into min-of-two.
            self.fault_stats.hedges_issued += 1
            dup = policy.hedge_deadline_seconds + inner_io(offset, nbytes) * factor
            dup += self._draw_spike()
            if OBS.enabled:
                OBS.counter("io.hedges_issued").inc()
            if dup < service:
                service = dup
                self.fault_stats.hedge_wins += 1
                if OBS.enabled:
                    OBS.counter("io.hedge_wins").inc()
        return at + spent + service

    def _service_read(self, offset: int, nbytes: int, at: float) -> float:
        return self._service("read", offset, nbytes, at)

    def _service_write(self, offset: int, nbytes: int, at: float) -> float:
        return self._service("write", offset, nbytes, at)

    # -- batched IO ----------------------------------------------------------

    def _batch_is_transparent(self, kind: str) -> bool:
        """Whether the fault pipeline is a no-op for IOs of ``kind``.

        With no spikes, no errors and no degraded phases, :meth:`_service`
        never touches the plan RNG or the fault counters, and its pricing
        collapses to ``at + 0.0 + (base * 1.0 + 0.0)`` — exactly
        ``at + base``.  Hedging can still fire without faults (a slow clean
        read past the deadline), so reads additionally require it off;
        writes are never hedged.
        """
        plan = self.plan
        return (
            plan.spike_prob <= 0.0
            and plan.error_prob <= 0.0
            and not plan.degraded
            and (kind == "write" or not self.policy.hedge_enabled)
        )

    def read_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched reads; bit-identical to a serial loop of :meth:`read`.

        When the fault pipeline is transparent (see
        :meth:`_batch_is_transparent`), the inner device's own batch path
        services the run and this wrapper does only its bookkeeping;
        otherwise each IO runs the full per-IO pipeline so the plan's RNG
        stream advances exactly as a serial loop would.
        """
        if not self._batch_is_transparent("read"):
            return super().read_batch(offsets, nbytes)
        offs = [int(o) for o in offsets]
        for off in offs:
            self._check(off, nbytes)
        bases = self.inner.read_batch(offs, nbytes)
        stats = self.stats
        out: list[float] = []
        for off, base in zip(offs, bases):
            start = self.clock
            end = start + base
            elapsed = end - start
            self.clock = end
            stats.reads += 1
            stats.bytes_read += nbytes
            stats.read_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("read", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "read")
            if OBS.enabled:
                self._obs_io("read", off, nbytes, start, end)
            out.append(elapsed)
        return out

    def write_batch(self, offsets, nbytes: int) -> list[float]:
        """Batched writes; bit-identical to a serial loop of :meth:`write`."""
        if not self._batch_is_transparent("write"):
            return super().write_batch(offsets, nbytes)
        offs = [int(o) for o in offsets]
        for off in offs:
            self._check(off, nbytes)
        bases = self.inner.write_batch(offs, nbytes)
        stats = self.stats
        out: list[float] = []
        for off, base in zip(offs, bases):
            start = self.clock
            end = start + base
            elapsed = end - start
            self.clock = end
            stats.writes += 1
            stats.bytes_written += nbytes
            stats.write_seconds += elapsed
            if self._trace_enabled:
                self.trace.append(IORecord("write", off, nbytes, start, end))
            if self.sampler is not None:
                self.sampler.record(nbytes, elapsed, "write")
            if OBS.enabled:
                self._obs_io("write", off, nbytes, start, end)
            out.append(elapsed)
        return out

    # -- identity and lifecycle ----------------------------------------------

    def describe(self) -> dict[str, object]:
        d = super().describe()
        d.update(
            inner=self.inner.describe(),
            plan=self.plan.describe(),
            policy=self.policy.describe(),
        )
        return d

    def reset(self) -> None:
        """Reset wrapper clock/stats, fault counters, RNG, and the inner device."""
        super().reset()
        self.inner.reset()
        self.fault_stats.reset()
        self._rng = np.random.default_rng(self.plan.seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FaultyDevice({self.inner!r}, plan.seed={self.plan.seed}, "
            f"policy={self.policy.name})"
        )
