"""Calibration workloads: measure a device the way the paper's Section 4 does.

Two probes, matching the two fits of Tables 1-2:

* :func:`probe_affine` — random reads across a ladder of IO sizes; the
  per-IO ``(size, seconds)`` pairs feed the Table 2 regression that
  recovers ``(s, t, alpha)``.
* :func:`probe_parallel` — a closed-loop thread ramp (p clients, each
  reading a fixed volume in block-sized random reads); the per-p
  completion times feed the Table 1 segmented regression that recovers
  ``(P, PB)``.  Devices with no concurrent interface are reported as
  serial (``None``).

Probes issue real (simulated) IOs and therefore cost simulated device
time; every probe result carries that cost so the autotuner can charge it
against the predicted savings of a reconfiguration.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.device import BlockDevice, ReadRequest
from repro.storage.ideal import PDAMDevice

DEFAULT_IO_SIZES = tuple(4096 * 2**k for k in range(11))  # 4 KiB .. 4 MiB
DEFAULT_THREAD_RAMP = (1, 2, 3, 4, 5, 6, 7, 8, 10, 12, 16, 24, 32)


@dataclass(frozen=True)
class AffineProbe:
    """Raw observations of one IO-size ladder."""

    io_sizes: tuple[int, ...]          # one entry per IO, not per rung
    seconds: tuple[float, ...]
    probe_seconds: float               # total simulated time spent probing
    probe_ios: int


@dataclass(frozen=True)
class ParallelProbe:
    """Raw observations of one thread-scaling ramp."""

    threads: tuple[int, ...]
    completion_seconds: tuple[float, ...]
    bytes_per_thread: int
    request_bytes: int
    probe_seconds: float
    probe_ios: int


def probe_affine(
    device: BlockDevice,
    *,
    io_sizes: tuple[int, ...] = DEFAULT_IO_SIZES,
    reads_per_size: int = 48,
    seed: int = 0,
) -> AffineProbe:
    """Issue ``reads_per_size`` random reads at each size; collect timings.

    Offsets are drawn uniformly over the device so seek distances match the
    random-IO regime the affine model prices (paper Section 4.2's "64
    random reads" per size).
    """
    if not io_sizes:
        raise ConfigurationError("need at least one IO size")
    if reads_per_size <= 0:
        raise ConfigurationError(f"reads_per_size must be positive, got {reads_per_size}")
    max_size = max(io_sizes)
    if max_size > device.capacity_bytes:
        raise ConfigurationError(
            f"largest probe IO ({max_size}) exceeds device capacity"
        )
    rng = np.random.default_rng(seed)
    sizes: list[int] = []
    secs: list[float] = []
    total = 0.0
    for nbytes in io_sizes:
        hi = device.capacity_bytes - nbytes
        offsets = rng.integers(0, hi // 512 + 1, size=reads_per_size) * 512
        # Batched issue: devices vectorize the homogeneous-size timing math
        # while staying bit-identical to one read() call per offset.
        for elapsed in device.read_batch([int(o) for o in offsets], int(nbytes)):
            sizes.append(int(nbytes))
            secs.append(elapsed)
            total += elapsed
    return AffineProbe(
        io_sizes=tuple(sizes),
        seconds=tuple(secs),
        probe_seconds=total,
        probe_ios=len(sizes),
    )


def supports_parallel_probe(device: BlockDevice) -> bool:
    """Whether the device exposes a concurrent interface worth ramping."""
    return isinstance(device, PDAMDevice) or hasattr(device, "run_closed_loop")


def probe_parallel(
    device: BlockDevice,
    *,
    threads: tuple[int, ...] = DEFAULT_THREAD_RAMP,
    bytes_per_thread: int = 4 << 20,
    request_bytes: int = 64 << 10,
    seed: int = 0,
) -> ParallelProbe | None:
    """Closed-loop thread ramp; ``None`` when the device is serial-only.

    Each of ``p`` clients keeps one ``request_bytes`` random read
    outstanding until it has read ``bytes_per_thread``.  Completion times
    are measured per ramp point on the same device instance (deltas of its
    clock), so a live device can be probed in place.
    """
    if not supports_parallel_probe(device):
        return None
    if isinstance(device, PDAMDevice):
        # The PDAM's native interface serves whole blocks; the ramp keeps
        # one block outstanding per client whatever request size was asked.
        request_bytes = device.block_bytes
    if bytes_per_thread < request_bytes:
        raise ConfigurationError(
            f"bytes_per_thread ({bytes_per_thread}) must cover one request "
            f"({request_bytes})"
        )
    n_requests = max(1, bytes_per_thread // request_bytes)
    times: list[float] = []
    total = 0.0
    ios = 0
    for p in threads:
        if isinstance(device, PDAMDevice):
            elapsed = _pdam_closed_loop(device, p, n_requests, seed=seed + p)
        else:
            elapsed = _closed_loop_runner(
                device, p, n_requests, request_bytes, seed=seed + p
            )
        times.append(elapsed)
        total += elapsed
        ios += p * n_requests
    return ParallelProbe(
        threads=tuple(threads),
        completion_seconds=tuple(times),
        bytes_per_thread=n_requests * request_bytes,
        request_bytes=request_bytes,
        probe_seconds=total,
        probe_ios=ios,
    )


def _closed_loop_runner(
    device: BlockDevice, p: int, n_requests: int, request_bytes: int, *, seed: int
) -> float:
    """Ramp point on a device with a ``run_closed_loop`` makespan API."""
    rng = np.random.default_rng(seed)
    n_slots = device.capacity_bytes // request_bytes
    streams = []
    for _ in range(p):
        offsets = rng.integers(0, n_slots, size=n_requests) * request_bytes
        streams.append([ReadRequest(int(o), request_bytes) for o in offsets])
    # run_closed_loop returns an absolute finish time; on a live device the
    # ramp starts after all prior work, so report the delta from the clock.
    start = device.clock
    return float(device.run_closed_loop(streams)) - start


def _pdam_closed_loop(device: PDAMDevice, p: int, n_requests: int, *, seed: int) -> float:
    """Ramp point on a PDAM device via its native step interface.

    Each client keeps one block read outstanding; every step serves up to
    ``P`` of the active clients (round-robin), which is exactly the model's
    closed-loop behaviour: flat completion time while ``p <= P``, linear
    growth beyond.
    """
    rng = np.random.default_rng(seed)
    B = device.block_bytes
    n_blocks = device.capacity_bytes // B
    remaining = [n_requests] * p
    start = device.clock
    cursor = 0
    while any(remaining):
        batch: list[int] = []
        scanned = 0
        while len(batch) < device.parallelism and scanned < p:
            client = (cursor + scanned) % p
            scanned += 1
            if remaining[client] > 0:
                batch.append(int(rng.integers(0, n_blocks)) * B)
                remaining[client] -= 1
        cursor = (cursor + scanned) % p
        device.serve_step(batch)
    return device.clock - start
