"""Apply a recommendation to a live tree, and decide whether it pays.

Two migration modes:

* :func:`rebuild_tree` — offline bulk rebuild: scan the old tree in key
  order (charged to its device) and bulk-load a new tree at the new
  configuration.  Cheapest total IO, but the tree is unavailable during
  the rebuild.
* :class:`IncrementalMigrator` — online: the key space is cut into slabs
  which migrate lowest-first, a Theorem-9-flavoured "rebuild subtrees in
  passes" schedule driven by writes (every ``writes_per_step`` routed
  writes migrates one slab).  Reads and writes route by the migration
  frontier, so the pair behaves as one dictionary throughout.

Both report migration cost in simulated device seconds so the payback
rule (:func:`migration_pays_off`) can weigh it against the predicted
steady-state per-op savings: a migration is worth it iff the op horizon
exceeds ``migration_seconds / (old_per_op - new_per_op)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Protocol

from repro.errors import ConfigurationError


class TreeLike(Protocol):
    """The dictionary surface the migrator needs (B-tree and Bε both fit)."""

    storage: Any

    def get(self, key: int) -> Any | None: ...
    def insert(self, key: int, value: Any) -> None: ...
    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]: ...
    def items(self): ...
    def bulk_load(self, pairs: list[tuple[int, Any]]) -> None: ...
    def __len__(self) -> int: ...


@dataclass
class MigrationReport:
    """What a migration cost and what it is predicted to save."""

    migration_seconds: float
    entries_moved: int
    mode: str                                  # "bulk" or "incremental"
    old_per_op_seconds: float | None = None
    new_per_op_seconds: float | None = None

    def payback_ops(self) -> float:
        """Operations until the migration has paid for itself.

        ``inf`` when the new configuration is not actually faster (or no
        per-op estimates were provided) — i.e. the migration never pays.
        """
        if self.old_per_op_seconds is None or self.new_per_op_seconds is None:
            return math.inf
        saving = self.old_per_op_seconds - self.new_per_op_seconds
        if saving <= 0:
            return math.inf
        return self.migration_seconds / saving

    def pays_off_within(self, horizon_ops: float) -> bool:
        """Whether the payback point falls inside the given op horizon."""
        if horizon_ops <= 0:
            raise ConfigurationError(f"horizon_ops must be positive, got {horizon_ops}")
        return self.payback_ops() <= horizon_ops


def migration_pays_off(
    migration_seconds: float,
    old_per_op_seconds: float,
    new_per_op_seconds: float,
    horizon_ops: float,
) -> bool:
    """The payback rule, standalone: migrate iff savings cover the cost."""
    report = MigrationReport(
        migration_seconds=migration_seconds,
        entries_moved=0,
        mode="planned",
        old_per_op_seconds=old_per_op_seconds,
        new_per_op_seconds=new_per_op_seconds,
    )
    return report.pays_off_within(horizon_ops)


def _busy_seconds(tree: TreeLike) -> float:
    return float(tree.storage.device.stats.busy_seconds)


def rebuild_tree(
    old_tree: TreeLike,
    make_new: Callable[[], TreeLike],
    *,
    old_per_op_seconds: float | None = None,
    new_per_op_seconds: float | None = None,
) -> tuple[TreeLike, MigrationReport]:
    """Offline bulk rebuild of ``old_tree`` into ``make_new()``.

    The scan of the old tree and the bulk load + flush of the new one are
    both charged to their storage stacks; the report sums whatever device
    time the migration consumed (the trees may share a device).
    """
    new_tree = make_new()
    if len(new_tree):
        raise ConfigurationError("make_new() must return an empty tree")
    shared = new_tree.storage.device is old_tree.storage.device
    before_old = _busy_seconds(old_tree)
    before_new = _busy_seconds(new_tree) if not shared else 0.0

    pairs = list(old_tree.items())
    new_tree.bulk_load(pairs)
    new_tree.storage.flush()

    spent = _busy_seconds(old_tree) - before_old
    if not shared:
        spent += _busy_seconds(new_tree) - before_new
    report = MigrationReport(
        migration_seconds=spent,
        entries_moved=len(pairs),
        mode="bulk",
        old_per_op_seconds=old_per_op_seconds,
        new_per_op_seconds=new_per_op_seconds,
    )
    return new_tree, report


class IncrementalMigrator:
    """Online slab-by-slab migration between two trees.

    The key universe ``[0, universe)`` is divided into ``n_slabs`` equal
    key ranges.  Slabs migrate in ascending key order; the *frontier* is
    the largest migrated key.  While migration runs, the pair serves a
    normal dictionary interface:

    * ``get``/``insert`` route to the new tree at or below the frontier,
      to the old tree above it (new inserts above the frontier are picked
      up when their slab migrates);
    * ``range`` stitches both sides at the frontier;
    * every ``writes_per_step`` routed inserts trigger one slab migration,
      amortizing rebuild IO against write traffic the way Theorem 9
      amortizes its weight-balanced rebuilds.

    Migration IO is tracked in ``report.migration_seconds`` as it happens,
    so an autotuner can abort mid-flight if the cost overruns the
    predicted savings.
    """

    def __init__(
        self,
        old_tree: TreeLike,
        new_tree: TreeLike,
        *,
        universe: int,
        n_slabs: int = 64,
        writes_per_step: int = 32,
    ) -> None:
        if universe <= 0:
            raise ConfigurationError(f"universe must be positive, got {universe}")
        if n_slabs <= 0:
            raise ConfigurationError(f"n_slabs must be positive, got {n_slabs}")
        if writes_per_step <= 0:
            raise ConfigurationError(
                f"writes_per_step must be positive, got {writes_per_step}"
            )
        if len(new_tree):
            raise ConfigurationError("new_tree must start empty")
        self.old = old_tree
        self.new = new_tree
        self.universe = int(universe)
        self.n_slabs = int(n_slabs)
        self.writes_per_step = int(writes_per_step)
        self._next_slab = 0
        self._writes_since_step = 0
        self._shared = new_tree.storage.device is old_tree.storage.device
        self.report = MigrationReport(
            migration_seconds=0.0, entries_moved=0, mode="incremental"
        )

    # -- migration state ---------------------------------------------------

    @property
    def frontier(self) -> int | None:
        """Largest migrated key, or ``None`` before the first slab."""
        if self._next_slab == 0:
            return None
        return self._slab_bounds(self._next_slab - 1)[1]

    @property
    def done(self) -> bool:
        """Whether every slab has migrated."""
        return self._next_slab >= self.n_slabs

    def _slab_bounds(self, slab: int) -> tuple[int, int]:
        width = -(-self.universe // self.n_slabs)  # ceil division
        lo = slab * width
        hi = min(self.universe - 1, lo + width - 1)
        return lo, hi

    def _spent(self) -> float:
        total = _busy_seconds(self.old)
        if not self._shared:
            total += _busy_seconds(self.new)
        return total

    def migrate_next_slab(self) -> int:
        """Move one slab of entries old -> new; returns entries moved."""
        if self.done:
            return 0
        lo, hi = self._slab_bounds(self._next_slab)
        before = self._spent()
        moved = self.old.range(lo, hi)
        for key, value in moved:
            self.new.insert(key, value)
        self._next_slab += 1
        self.report.migration_seconds += self._spent() - before
        self.report.entries_moved += len(moved)
        return len(moved)

    def run_to_completion(self) -> MigrationReport:
        """Migrate every remaining slab (flushes the new tree at the end)."""
        while not self.done:
            self.migrate_next_slab()
        before = self._spent()
        self.new.storage.flush()
        self.report.migration_seconds += self._spent() - before
        return self.report

    # -- dictionary surface ------------------------------------------------

    def get(self, key: int) -> Any | None:
        """Point query routed by the migration frontier."""
        frontier = self.frontier
        if frontier is not None and key <= frontier:
            return self.new.get(key)
        return self.old.get(key)

    def insert(self, key: int, value: Any) -> None:
        """Insert routed by the frontier; may trigger one migration step."""
        frontier = self.frontier
        if frontier is not None and key <= frontier:
            self.new.insert(key, value)
        else:
            self.old.insert(key, value)
        self._writes_since_step += 1
        if self._writes_since_step >= self.writes_per_step and not self.done:
            self._writes_since_step = 0
            self.migrate_next_slab()

    def range(self, lo: int, hi: int) -> list[tuple[int, Any]]:
        """Range query stitched across the frontier."""
        if lo > hi:
            return []
        frontier = self.frontier
        if frontier is None:
            return self.old.range(lo, hi)
        out: list[tuple[int, Any]] = []
        if lo <= frontier:
            out.extend(self.new.range(lo, min(hi, frontier)))
        if hi > frontier:
            out.extend(self.old.range(max(lo, frontier + 1), hi))
        return out

    def __len__(self) -> int:
        # Migrated entries stay (stale, never consulted) in the old tree,
        # so subtract them once.
        return len(self.new) + len(self.old) - self.report.entries_moved
