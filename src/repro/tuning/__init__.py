"""Online device calibration and model-driven auto-tuning.

The subsystem closes the loop the paper leaves open: it *measures* a
device's affine ``(s, t, alpha)`` and PDAM ``(P, B)`` parameters with
calibration workloads (:mod:`~repro.tuning.probe`), gates the fits on R²
(:mod:`~repro.tuning.calibrate`), solves the models of
:mod:`repro.models.analysis` for the best tree configuration at the
*measured* parameters (:mod:`~repro.tuning.solve`), and migrates a live
tree to that configuration when the payback rule says the move is worth
its IO (:mod:`~repro.tuning.reconfigure`).  :class:`~repro.tuning.autotuner.AutoTuner`
drives the whole chain.
"""

from repro.tuning.autotuner import (
    AutoTuner,
    TuningOutcome,
    estimate_migration_seconds,
)
from repro.tuning.calibrate import (
    PARALLEL_THRESHOLD,
    DeviceProfile,
    calibrate_device,
    fit_affine_probe,
    refit_from_samples,
    refit_profile,
)
from repro.tuning.probe import (
    DEFAULT_IO_SIZES,
    DEFAULT_THREAD_RAMP,
    AffineProbe,
    ParallelProbe,
    probe_affine,
    probe_parallel,
    supports_parallel_probe,
)
from repro.tuning.reconfigure import (
    IncrementalMigrator,
    MigrationReport,
    TreeLike,
    migration_pays_off,
    rebuild_tree,
)
from repro.tuning.solve import (
    Recommendation,
    solve,
    solve_betree_params,
    solve_btree_node_entries,
)

__all__ = [
    "AutoTuner",
    "TuningOutcome",
    "estimate_migration_seconds",
    "PARALLEL_THRESHOLD",
    "DeviceProfile",
    "calibrate_device",
    "fit_affine_probe",
    "refit_from_samples",
    "refit_profile",
    "DEFAULT_IO_SIZES",
    "DEFAULT_THREAD_RAMP",
    "AffineProbe",
    "ParallelProbe",
    "probe_affine",
    "probe_parallel",
    "supports_parallel_probe",
    "IncrementalMigrator",
    "MigrationReport",
    "TreeLike",
    "migration_pays_off",
    "rebuild_tree",
    "Recommendation",
    "solve",
    "solve_betree_params",
    "solve_btree_node_entries",
]
