"""The closed loop: probe -> fit -> solve -> reconfigure.

:class:`AutoTuner` owns one device and walks the whole chain:

1. **calibrate** — active probes with escalating sample counts until the
   affine fit clears the R² gate (or rounds run out);
2. **refit** — passive refresh from the device's IO sampler, free of
   probe traffic;
3. **recommend** — solve the fitted model for the best configuration of a
   tree family (:mod:`repro.tuning.solve`);
4. **apply** — migrate a live tree to the recommendation, bulk or
   incremental, guarded by the payback rule: predicted migration cost
   must be recovered from predicted per-op savings within the op horizon.

Every quantity is simulated device seconds, the repository's common
currency, so probe cost, migration cost and steady-state savings are
directly comparable.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.storage.device import BlockDevice
from repro.trees.sizing import EntryFormat
from repro.tuning.calibrate import (
    DeviceProfile,
    calibrate_device,
    refit_profile,
)
from repro.tuning.probe import DEFAULT_IO_SIZES, DEFAULT_THREAD_RAMP
from repro.tuning.reconfigure import (
    IncrementalMigrator,
    MigrationReport,
    TreeLike,
    rebuild_tree,
)
from repro.tuning.solve import Recommendation, solve

from repro.runner.cache import ResultCache, fingerprint as _runner_fingerprint


def _calibration_fingerprint(
    device: BlockDevice,
    *,
    io_sizes: tuple[int, ...],
    reads_per_size: int,
    threads: tuple[int, ...],
    bytes_per_thread: int,
    request_bytes: int,
    min_r2: float,
    seed: int,
    max_probe_rounds: int,
) -> str:
    """Content address of one calibration run on a fresh device."""
    return _runner_fingerprint(
        "autotuner_calibrate",
        {
            "device": device.describe(),
            "io_sizes": list(io_sizes),
            "reads_per_size": reads_per_size,
            "threads": list(threads),
            "bytes_per_thread": bytes_per_thread,
            "request_bytes": request_bytes,
            "min_r2": min_r2,
            "seed": seed,
            "max_probe_rounds": max_probe_rounds,
        },
    )


def estimate_migration_seconds(
    profile: DeviceProfile,
    n_entries: int,
    old_node_bytes: int,
    new_node_bytes: int,
    fmt: EntryFormat = EntryFormat(),
) -> float:
    """Model-predicted cost of rebuilding ``n_entries`` at a new node size.

    A rebuild reads every old leaf once and writes every new leaf once;
    each IO costs ``s + t * node_bytes`` under the fitted affine model.
    Internal levels add a lower-order term that the estimate ignores —
    the payback rule only needs the right magnitude.
    """
    if n_entries < 0:
        raise ConfigurationError(f"n_entries must be non-negative, got {n_entries}")
    s = profile.setup_seconds
    t = profile.affine.seconds_per_byte
    total = 0.0
    for node_bytes in (old_node_bytes, new_node_bytes):
        leaves = max(1.0, n_entries / fmt.leaf_capacity(node_bytes))
        total += leaves * (s + t * node_bytes)
    return total


@dataclass
class TuningOutcome:
    """What one full tuning pass measured, decided, and did."""

    profile: DeviceProfile
    recommendation: Recommendation
    migrated: bool
    tree: TreeLike                      # the live tree after the pass
    report: MigrationReport | None      # None when migration was skipped
    predicted_migration_seconds: float
    predicted_payback_ops: float


class AutoTuner:
    """Online calibration and model-driven reconfiguration for one device."""

    def __init__(
        self,
        device: BlockDevice,
        *,
        fmt: EntryFormat = EntryFormat(),
        min_r2: float = 0.98,
        seed: int = 0,
        max_probe_rounds: int = 3,
        cache: "ResultCache | None" = None,
    ) -> None:
        if not 0.0 < min_r2 <= 1.0:
            raise ConfigurationError(f"min_r2 must be in (0, 1], got {min_r2}")
        if max_probe_rounds <= 0:
            raise ConfigurationError(
                f"max_probe_rounds must be positive, got {max_probe_rounds}"
            )
        self.device = device
        self.fmt = fmt
        self.min_r2 = float(min_r2)
        self.seed = int(seed)
        self.max_probe_rounds = int(max_probe_rounds)
        self.cache = cache
        self.profile: DeviceProfile | None = None

    # -- probe + fit -------------------------------------------------------

    def calibrate(
        self,
        *,
        io_sizes: tuple[int, ...] = DEFAULT_IO_SIZES,
        reads_per_size: int = 32,
        threads: tuple[int, ...] = DEFAULT_THREAD_RAMP,
        bytes_per_thread: int = 4 << 20,
        request_bytes: int = 64 << 10,
    ) -> DeviceProfile:
        """Active calibration, doubling the sample count until confident.

        Noisy devices (a disk's rotational latency is uniform over a full
        revolution) may need more than one round; each retry doubles
        ``reads_per_size`` so the sample mean tightens.  The last round's
        profile is kept even if it misses the gate — callers can check
        ``profile.confident()`` when they need the distinction.

        When the tuner was built with a result ``cache``, the fitted
        profile is memoized under the device's :meth:`describe` identity
        plus every probe parameter.  **Caveat:** a cache hit skips the
        probe IOs entirely, so the device's clock, RNG stream and head
        position are left untouched instead of advanced — only reuse the
        cache on a *fresh* device (or when downstream work does not depend
        on device state), never mid-measurement.
        """
        fp: str | None = None
        if self.cache is not None:
            fp = _calibration_fingerprint(
                self.device,
                io_sizes=io_sizes,
                reads_per_size=reads_per_size,
                threads=threads,
                bytes_per_thread=bytes_per_thread,
                request_bytes=request_bytes,
                min_r2=self.min_r2,
                seed=self.seed,
                max_probe_rounds=self.max_probe_rounds,
            )
            cached = self.cache.get(fp)
            if not self.cache.is_miss(cached):
                self.profile = cached
                return cached
        rps = reads_per_size
        profile: DeviceProfile | None = None
        for round_idx in range(self.max_probe_rounds):
            profile = calibrate_device(
                self.device,
                io_sizes=io_sizes,
                reads_per_size=rps,
                threads=threads,
                bytes_per_thread=bytes_per_thread,
                request_bytes=request_bytes,
                min_r2=self.min_r2,
                seed=self.seed + 101 * round_idx,
            )
            if profile.confident(self.min_r2):
                break
            rps *= 2
        assert profile is not None
        if self.cache is not None and fp is not None:
            self.cache.put(fp, profile)
        self.profile = profile
        return profile

    def refit(self, *, min_samples: int = 16, min_r2: float = 0.9) -> DeviceProfile | None:
        """Passive re-fit from the device's IO sampler; updates the profile.

        Returns the refreshed profile, or ``None`` when no probe-free fit
        was possible (sampler off, too few samples, too narrow an IO-size
        spread, or a sub-gate R²) — in that case the active profile stays.
        """
        if self.profile is None:
            return None
        updated = refit_profile(
            self.profile, self.device, min_samples=min_samples, min_r2=min_r2
        )
        if updated is not None:
            self.profile = updated
        return updated

    # -- solve -------------------------------------------------------------

    def recommend(
        self,
        *,
        n_entries: int,
        cache_bytes: int,
        tree: str = "btree",
        query_fraction: float = 1.0,
        write_cost_multiplier: float = 1.0,
        prefer_parallel_layout: bool = True,
    ) -> Recommendation:
        """Solve the fitted model for the given tree family and workload.

        ``prefer_parallel_layout`` selects Lemma 13's PB/vEB configuration
        on devices with fitted parallelism; pass ``False`` when the target
        workload is serial (one outstanding IO cannot use the extra slots,
        so the serial Corollary 6/7 optimum is the right choice).
        """
        if self.profile is None:
            raise ConfigurationError("calibrate() before recommend()")
        return solve(
            self.profile,
            n_entries=n_entries,
            cache_bytes=cache_bytes,
            fmt=self.fmt,
            tree=tree,
            query_fraction=query_fraction,
            write_cost_multiplier=write_cost_multiplier,
            prefer_parallel_layout=prefer_parallel_layout,
        )

    # -- reconfigure -------------------------------------------------------

    def apply(
        self,
        old_tree: TreeLike,
        recommendation: Recommendation,
        make_new,
        *,
        current_node_bytes: int,
        current_per_op_seconds: float | None = None,
        horizon_ops: float | None = None,
        mode: str = "bulk",
        universe: int | None = None,
    ) -> TuningOutcome:
        """Migrate ``old_tree`` to the recommendation if it pays for itself.

        When ``current_per_op_seconds`` and ``horizon_ops`` are given, the
        payback rule gates the migration: predicted rebuild cost (from the
        fitted model, *before* moving anything) must be recoverable from
        the predicted per-op savings within the horizon.  Without them the
        migration is unconditional.
        """
        if self.profile is None:
            raise ConfigurationError("calibrate() before apply()")
        if mode not in ("bulk", "incremental"):
            raise ConfigurationError(f"unknown migration mode {mode!r}")
        n_entries = len(old_tree)
        predicted_cost = estimate_migration_seconds(
            self.profile,
            n_entries,
            current_node_bytes,
            recommendation.node_bytes,
            self.fmt,
        )
        predicted_payback = float("inf")
        if current_per_op_seconds is not None:
            saving = current_per_op_seconds - recommendation.predicted_per_op_seconds
            if saving > 0:
                predicted_payback = predicted_cost / saving
        if horizon_ops is not None and predicted_payback > horizon_ops:
            return TuningOutcome(
                profile=self.profile,
                recommendation=recommendation,
                migrated=False,
                tree=old_tree,
                report=None,
                predicted_migration_seconds=predicted_cost,
                predicted_payback_ops=predicted_payback,
            )
        if mode == "bulk":
            new_tree, report = rebuild_tree(
                old_tree,
                make_new,
                old_per_op_seconds=current_per_op_seconds,
                new_per_op_seconds=recommendation.predicted_per_op_seconds,
            )
        else:
            if universe is None:
                raise ConfigurationError("incremental migration needs the key universe")
            migrator = IncrementalMigrator(old_tree, make_new(), universe=universe)
            report = migrator.run_to_completion()
            report.old_per_op_seconds = current_per_op_seconds
            report.new_per_op_seconds = recommendation.predicted_per_op_seconds
            new_tree = migrator.new
        return TuningOutcome(
            profile=self.profile,
            recommendation=recommendation,
            migrated=True,
            tree=new_tree,
            report=report,
            predicted_migration_seconds=predicted_cost,
            predicted_payback_ops=predicted_payback,
        )
