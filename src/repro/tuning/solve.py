"""Turn a fitted device profile into a tree configuration.

This is the model-driven step of the loop: the closed-form/numeric optima
of :mod:`repro.models.analysis` (Corollaries 6/7 for the B-tree, 11/12 and
the mixed-workload generalization for the Bε-tree, Lemma 13 for parallel
devices) evaluated at the *measured* ``alpha`` instead of an assumed one.

All optimization happens in the paper's units — node size ``B`` and cache
``M`` in entries, ``alpha`` per entry — and is converted to bytes only at
the edge via :class:`~repro.trees.sizing.EntryFormat`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.models.analysis import (
    btree_op_cost,
    mixed_workload_cost,
    optimal_btree_node_size,
    optimal_mixed_betree_params,
)
from repro.trees.sizing import EntryFormat
from repro.tuning.calibrate import DeviceProfile

#: Node-size grid used for predicted cost curves (2 KiB .. 4 MiB).
COST_CURVE_NODE_BYTES = tuple(2048 * 2**k for k in range(12))


@dataclass(frozen=True)
class Recommendation:
    """One solved configuration, with the prediction that justified it."""

    tree: str                      # "btree" or "betree"
    layout: str                    # "flat" or "veb"
    node_bytes: int
    fanout: int | None             # Bε fanout F (None for the B-tree)
    epsilon: float | None          # ln F / ln B_entries (None for the B-tree)
    alpha_per_entry: float
    predicted_per_op_seconds: float
    paper_anchor: str
    cost_curve: tuple[tuple[int, float], ...]  # (node_bytes, predicted s/op)

    def predicted_at(self, node_bytes: int) -> float:
        """Predicted per-op seconds at the curve point nearest ``node_bytes``."""
        if not self.cost_curve:
            raise ConfigurationError("recommendation has no cost curve")
        nearest = min(self.cost_curve, key=lambda p: abs(math.log(p[0] / node_bytes)))
        return nearest[1]


def _check_population(n_entries: float, cache_entries: float) -> None:
    if n_entries <= cache_entries:
        raise ConfigurationError(
            f"tuning needs an out-of-cache tree: N={n_entries} <= M={cache_entries}"
        )
    if cache_entries <= 0:
        raise ConfigurationError(f"cache_entries must be positive, got {cache_entries}")


def solve_btree_node_entries(
    alpha_per_entry: float, n_entries: float, cache_entries: float
) -> float:
    """Numeric argmin of the Lemma 5 per-op cost at the fitted alpha.

    The ``log(N/M)`` height factor is a vertical scale as long as the
    height does not clamp at 1, so this matches Corollary 7's
    ``argmin (1+alpha x)/ln(x+1)`` wherever both are interior optima; the
    clamp only matters for trees that nearly fit in cache.
    """
    _check_population(n_entries, cache_entries)
    if alpha_per_entry <= 0:
        raise ConfigurationError(f"alpha must be positive, got {alpha_per_entry}")
    return optimal_btree_node_size(alpha_per_entry)


def solve_betree_params(
    alpha_per_entry: float,
    n_entries: float,
    cache_entries: float,
    *,
    query_fraction: float = 0.5,
    write_cost_multiplier: float = 1.0,
) -> tuple[float, float]:
    """Jointly optimal ``(F, B)`` in entries for the measured device/mix."""
    _check_population(n_entries, cache_entries)
    return optimal_mixed_betree_params(
        alpha_per_entry,
        n_entries,
        cache_entries,
        query_fraction=query_fraction,
        write_cost_multiplier=write_cost_multiplier,
    )


def _entries_for_node_bytes(node_bytes: int, fmt: EntryFormat) -> float:
    return max(2.0, (node_bytes - fmt.node_header_bytes) / fmt.entry_bytes)


def _btree_curve(
    alpha_e: float, n_entries: float, cache_entries: float,
    setup_seconds: float, fmt: EntryFormat,
) -> tuple[tuple[int, float], ...]:
    curve = []
    for nb in COST_CURVE_NODE_BYTES:
        entries = _entries_for_node_bytes(nb, fmt)
        cost = btree_op_cost(entries, alpha_e, n_entries, cache_entries)
        curve.append((nb, setup_seconds * cost))
    return tuple(curve)


def _betree_curve(
    F: float, alpha_e: float, n_entries: float, cache_entries: float,
    setup_seconds: float, fmt: EntryFormat,
    query_fraction: float, write_cost_multiplier: float,
) -> tuple[tuple[int, float], ...]:
    curve = []
    for nb in COST_CURVE_NODE_BYTES:
        entries = _entries_for_node_bytes(nb, fmt)
        if entries <= F:
            continue  # fanout would not fit this node size
        cost = mixed_workload_cost(
            entries, F, alpha_e, n_entries, cache_entries,
            query_fraction=query_fraction,
            write_cost_multiplier=write_cost_multiplier,
        )
        curve.append((nb, setup_seconds * cost))
    return tuple(curve)


def solve(
    profile: DeviceProfile,
    *,
    n_entries: int,
    cache_bytes: int,
    fmt: EntryFormat = EntryFormat(),
    tree: str = "btree",
    query_fraction: float = 1.0,
    write_cost_multiplier: float = 1.0,
    prefer_parallel_layout: bool = True,
) -> Recommendation:
    """Recommend a configuration for ``tree`` on the profiled device.

    B-tree on a serial device: Corollary 6/7 node size at the fitted
    alpha.  B-tree on a device whose PDAM fit found parallelism: Lemma 13's
    ``PB``-sized nodes in vEB layout (every concurrency level is then
    within a constant of optimal).  Bε-tree: the mixed-workload
    generalization of Corollaries 11/12, weighting queries against inserts
    and any read/write asymmetry.
    """
    if tree not in ("btree", "betree"):
        raise ConfigurationError(f"unknown tree family {tree!r}")
    cache_entries = max(1.0, cache_bytes / fmt.entry_bytes)
    alpha_e = profile.alpha_per_entry(fmt.entry_bytes)
    s = profile.setup_seconds

    if tree == "btree":
        curve = _btree_curve(alpha_e, n_entries, cache_entries, s, fmt)
        if profile.is_parallel and prefer_parallel_layout:
            assert profile.pdam is not None and profile.parallel_block_bytes
            pb = max(1, round(profile.pdam.parallelism)) * profile.parallel_block_bytes
            entries = _entries_for_node_bytes(pb, fmt)
            predicted = s * btree_op_cost(entries, alpha_e, n_entries, cache_entries)
            return Recommendation(
                tree="btree",
                layout="veb",
                node_bytes=int(pb),
                fanout=None,
                epsilon=None,
                alpha_per_entry=alpha_e,
                predicted_per_op_seconds=predicted,
                paper_anchor=(
                    "Lemma 13: PB-sized nodes in van Emde Boas layout serve "
                    "every k <= P concurrency level within a constant of optimal"
                ),
                cost_curve=curve,
            )
        entries = solve_btree_node_entries(alpha_e, n_entries, cache_entries)
        node_bytes = fmt.leaf_bytes(max(2, round(entries)))
        predicted = s * btree_op_cost(
            max(2.0, entries), alpha_e, n_entries, cache_entries
        )
        return Recommendation(
            tree="btree",
            layout="flat",
            node_bytes=node_bytes,
            fanout=None,
            epsilon=None,
            alpha_per_entry=alpha_e,
            predicted_per_op_seconds=predicted,
            paper_anchor=(
                "Corollaries 6/7: optimal B-tree node size is "
                "Theta(1/(alpha ln(1/alpha))), below the half-bandwidth point"
            ),
            cost_curve=curve,
        )

    F, B = solve_betree_params(
        alpha_e,
        n_entries,
        cache_entries,
        query_fraction=query_fraction,
        write_cost_multiplier=write_cost_multiplier,
    )
    node_bytes = fmt.leaf_bytes(max(2, round(B)))
    fanout = max(2, round(F))
    predicted = s * mixed_workload_cost(
        max(2.0, B), max(2.0, F), alpha_e, n_entries, cache_entries,
        query_fraction=query_fraction,
        write_cost_multiplier=write_cost_multiplier,
    )
    epsilon = math.log(max(2.0, F)) / math.log(max(4.0, B))
    return Recommendation(
        tree="betree",
        layout="flat",
        node_bytes=node_bytes,
        fanout=fanout,
        epsilon=epsilon,
        alpha_per_entry=alpha_e,
        predicted_per_op_seconds=predicted,
        paper_anchor=(
            "Corollaries 11/12 + Section 3 asymmetry: fanout/node size from "
            "the mixed-workload argmin at the fitted alpha"
        ),
        cost_curve=_betree_curve(
            max(2.0, F), alpha_e, n_entries, cache_entries, s, fmt,
            query_fraction, write_cost_multiplier,
        ),
    )
