"""Fit device parameters from probe data or passive IO samples.

The output, :class:`DeviceProfile`, is the tuner's picture of a device:

* affine ``(s, t, alpha)`` from the Table 2 regression over an IO-size
  ladder, with R² gating and an adaptive retry that trims the largest
  sizes when the top of the ladder leaves the affine regime (internally
  parallel devices flatten there — striping across dies is exactly the
  behaviour the PDAM models and the affine model does not);
* PDAM ``(P, PB)`` from the Table 1 segmented regression over a thread
  ramp, when the device has a concurrent interface and actually saturates.

:func:`refit_from_samples` performs the same affine fit from a device's
passive :class:`~repro.storage.device.IOSampler` ring buffer — no probe
IOs issued — returning ``None`` whenever the samples cannot support a
confident fit (too few, too narrow a size spread, low R²).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

from repro.analysis.fitting import AffineFit, PDAMFit, fit_affine_model, fit_pdam_model
from repro.errors import ConfigurationError, FitError
from repro.storage.device import BlockDevice, IOSample
from repro.tuning.probe import (
    DEFAULT_IO_SIZES,
    DEFAULT_THREAD_RAMP,
    AffineProbe,
    probe_affine,
    probe_parallel,
)

#: A fitted parallelism below this is indistinguishable from a serial
#: device (the knee estimate has about half-a-thread resolution).
PARALLEL_THRESHOLD = 1.5


@dataclass(frozen=True)
class DeviceProfile:
    """Everything the solver needs to know about one measured device."""

    affine: AffineFit
    pdam: PDAMFit | None
    probe_seconds: float       # simulated time the calibration cost
    probe_ios: int
    source: str                # "probe" or "trace"
    parallel_block_bytes: int | None = None  # request size of the ramp

    @property
    def alpha_per_byte(self) -> float:
        """Normalized bandwidth cost per byte, ``t / s``."""
        return self.affine.seconds_per_byte / self.affine.setup_seconds

    @property
    def setup_seconds(self) -> float:
        """Fitted setup cost ``s``."""
        return self.affine.setup_seconds

    @property
    def is_parallel(self) -> bool:
        """Whether the PDAM fit found usable internal parallelism."""
        return self.pdam is not None and self.pdam.parallelism >= PARALLEL_THRESHOLD

    def alpha_per_entry(self, entry_bytes: int) -> float:
        """Alpha in the paper's unit-size-entry convention."""
        if entry_bytes <= 0:
            raise ConfigurationError(f"entry_bytes must be positive, got {entry_bytes}")
        return self.alpha_per_byte * entry_bytes

    def confident(self, min_r2: float = 0.98) -> bool:
        """Whether the affine fit clears the R² gate."""
        return self.affine.r2 >= min_r2


def _mean_by_size(sizes: Sequence[int], secs: Sequence[float]) -> tuple[list[int], list[float]]:
    """Collapse per-IO observations to one mean duration per IO size."""
    totals: dict[int, list[float]] = {}
    for size, sec in zip(sizes, secs):
        totals.setdefault(size, []).append(sec)
    rungs = sorted(totals)
    return rungs, [sum(totals[r]) / len(totals[r]) for r in rungs]


def _small_size_rel_err(sizes: Sequence[int], secs: Sequence[float], fit: AffineFit) -> float:
    """Worst relative error of the fit at the two smallest ladder rungs."""
    errs = []
    for size, observed in list(zip(sizes, secs))[:2]:
        predicted = fit.setup_seconds + fit.seconds_per_byte * size
        errs.append(abs(predicted - observed) / observed)
    return max(errs)


def fit_affine_probe(
    probe: AffineProbe, *, min_r2: float = 0.98, max_small_rel_err: float = 0.25
) -> AffineFit:
    """Table 2 regression over probe data, trimming out-of-regime sizes.

    Per-IO timings are first collapsed to a mean per ladder rung — the
    paper fits the average of its 64 random reads per size, and per-sample
    noise (a disk's rotational position) would otherwise cap R² no matter
    how many samples were taken.

    Two gates decide whether a fit is usable: the R² floor, and a relative
    error bound at the *smallest* rungs.  The second matters on internally
    parallel devices: IOs past the stripe size flatten (exactly what the
    PDAM models and one line cannot express), and because OLS weighs
    absolute error, those large-size samples can drag the intercept far
    above the true small-IO cost while R² stays high — yet the small-IO
    end is where optimal node sizes live.  While either gate fails and at
    least four rungs remain, the largest size is dropped and the fit
    retried; if no attempt passes both gates the best-R² attempt among
    those passing the small-size gate wins, then the best overall.
    """
    sizes, secs = _mean_by_size(probe.io_sizes, probe.seconds)
    best: AffineFit | None = None
    best_small: AffineFit | None = None
    while True:
        try:
            fit = fit_affine_model(sizes, secs, alpha_unit_bytes=1)
        except FitError:
            fit = None
        if fit is not None:
            small_ok = _small_size_rel_err(sizes, secs, fit) <= max_small_rel_err
            if fit.r2 >= min_r2 and small_ok:
                return fit
            if best is None or fit.r2 > best.r2:
                best = fit
            if small_ok and (best_small is None or fit.r2 > best_small.r2):
                best_small = fit
        if len(sizes) <= 4:
            break
        sizes = sizes[:-1]
        secs = secs[:-1]
    if best_small is not None:
        return best_small
    if best is None:
        raise FitError("affine calibration failed: no valid fit at any size range")
    return best


def calibrate_device(
    device: BlockDevice,
    *,
    io_sizes: tuple[int, ...] = DEFAULT_IO_SIZES,
    reads_per_size: int = 48,
    threads: tuple[int, ...] = DEFAULT_THREAD_RAMP,
    bytes_per_thread: int = 4 << 20,
    request_bytes: int = 64 << 10,
    min_r2: float = 0.98,
    seed: int = 0,
) -> DeviceProfile:
    """Full active calibration: probe -> fit, both model families.

    The affine probe always runs (every device answers serial reads).  The
    parallel ramp runs only on devices with a concurrent interface; a ramp
    that never saturates (FitError) or fits a sub-threshold ``P`` yields
    ``pdam=None`` rather than a bogus parameter.
    """
    affine_probe = probe_affine(
        device, io_sizes=io_sizes, reads_per_size=reads_per_size, seed=seed
    )
    affine = fit_affine_probe(affine_probe, min_r2=min_r2)
    probe_seconds = affine_probe.probe_seconds
    probe_ios = affine_probe.probe_ios

    pdam: PDAMFit | None = None
    block: int | None = None
    ramp = probe_parallel(
        device,
        threads=threads,
        bytes_per_thread=bytes_per_thread,
        request_bytes=request_bytes,
        seed=seed + 1,
    )
    if ramp is not None:
        probe_seconds += ramp.probe_seconds
        probe_ios += ramp.probe_ios
        try:
            fit = fit_pdam_model(
                list(ramp.threads),
                list(ramp.completion_seconds),
                bytes_per_thread=ramp.bytes_per_thread,
            )
        except FitError:
            fit = None
        if fit is not None and not fit.segmented.degenerate:
            pdam = fit
            block = ramp.request_bytes
    return DeviceProfile(
        affine=affine,
        pdam=pdam,
        probe_seconds=probe_seconds,
        probe_ios=probe_ios,
        source="probe",
        parallel_block_bytes=block,
    )


def refit_from_samples(
    samples: Sequence[IOSample],
    *,
    min_samples: int = 16,
    min_size_spread: float = 4.0,
    min_r2: float = 0.9,
    kind: str = "read",
) -> AffineFit | None:
    """Passive affine re-fit from an IO ring buffer; ``None`` if unusable.

    Samples are collapsed to per-size means (as in active calibration).
    Gating, in order: enough samples of the requested direction, at least
    three distinct IO sizes, a size spread of at least ``min_size_spread``
    between smallest and largest IO (a workload hammering one node size
    carries no slope information), a successful positive-parameter fit,
    and the R² floor.  The floor is
    looser than active calibration's because live traffic is noisier than
    a controlled ladder; callers wanting probe-grade confidence should
    re-probe.
    """
    usable = [s for s in samples if s.kind == kind and s.nbytes > 0]
    if len(usable) < min_samples:
        return None
    sizes, secs = _mean_by_size(
        [s.nbytes for s in usable], [s.seconds for s in usable]
    )
    if len(sizes) < 3:
        return None  # two points always fit perfectly; R² would be vacuous
    lo, hi = sizes[0], sizes[-1]
    if lo <= 0 or hi / lo < min_size_spread:
        return None
    try:
        fit = fit_affine_model(sizes, secs, alpha_unit_bytes=1)
    except FitError:
        return None
    if fit.r2 < min_r2:
        return None
    return fit


def refit_profile(
    profile: DeviceProfile,
    device: BlockDevice,
    *,
    min_samples: int = 16,
    min_r2: float = 0.9,
) -> DeviceProfile | None:
    """Refresh a profile's affine half from the device's passive sampler.

    Keeps the PDAM half (parallelism does not drift with workload mix the
    way effective setup cost does) and marks the result as trace-sourced.
    Returns ``None`` when the sampler is off or its contents fail the
    :func:`refit_from_samples` gates.
    """
    if device.sampler is None:
        return None
    fit = refit_from_samples(
        device.sampler.samples(), min_samples=min_samples, min_r2=min_r2
    )
    if fit is None:
        return None
    return replace(profile, affine=fit, source="trace")
