"""Regression and model-fitting tools used by the validation experiments.

* :mod:`repro.analysis.metrics` — goodness-of-fit metrics (R², RMS).
* :mod:`repro.analysis.regression` — ordinary least squares and the
  *segmented* linear regression the paper uses to recover the PDAM's ``P``
  from the thread-scaling benchmark (Table 1).
* :mod:`repro.analysis.fitting` — device-parameter fits: affine ``(s, t,
  alpha)`` from IO-size sweeps (Table 2) and PDAM ``(P, PB)`` from thread
  sweeps (Table 1), plus the affine overlay lines of Figures 2-3.
"""

from repro.analysis.metrics import r_squared, rms_error
from repro.analysis.regression import (
    LinearFit,
    SegmentedFit,
    linear_fit,
    segmented_linear_fit,
)
from repro.analysis.traces import (
    TraceSummary,
    io_size_histogram,
    summarize_trace,
    trace_from_csv,
    trace_to_csv,
)
from repro.analysis.fitting import (
    AffineFit,
    PDAMFit,
    fit_affine_model,
    fit_pdam_model,
    fit_affine_overlay,
)

__all__ = [
    "r_squared",
    "rms_error",
    "LinearFit",
    "SegmentedFit",
    "linear_fit",
    "segmented_linear_fit",
    "AffineFit",
    "PDAMFit",
    "fit_affine_model",
    "fit_pdam_model",
    "fit_affine_overlay",
    "TraceSummary",
    "io_size_histogram",
    "summarize_trace",
    "trace_from_csv",
    "trace_to_csv",
]
