"""Ordinary and segmented linear regression.

Segmented linear regression is the tool the paper uses for Table 1:

    "Segmented linear regression is appropriate for fitting data that is
    known to follow different linear functions in different ranges.
    Segmented linear regression outputs the boundaries between the
    different regions and the parameters of the line of best fit within
    each region."

The implementation scans every candidate breakpoint between consecutive
x-values, fits each side by OLS, and keeps the breakpoint with the smallest
total squared error.  For the PDAM experiment the left segment is the flat
(parallelism-hidden) region and the breakpoint's x-position estimates ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.metrics import r_squared
from repro.errors import FitError


@dataclass(frozen=True)
class LinearFit:
    """Result of a 1-D ordinary least squares fit ``y = slope*x + intercept``."""

    slope: float
    intercept: float
    r2: float

    def predict(self, x) -> np.ndarray:
        """Evaluate the fitted line at ``x`` (scalar or array)."""
        return self.slope * np.asarray(x, dtype=float) + self.intercept


@dataclass(frozen=True)
class SegmentedFit:
    """Result of a two-segment piecewise-linear fit.

    Attributes
    ----------
    breakpoint:
        x-position separating the two regimes (midpoint between the last
        left sample and the first right sample).
    left, right:
        Per-segment :class:`LinearFit` objects.
    r2:
        Overall coefficient of determination across both segments.
    degenerate:
        True when no valid breakpoint existed (all x-values fell on one
        side of every candidate split) and the result is a single-segment
        fallback fit duplicated on both sides.  Callers doing model
        selection — e.g. the tuner's early re-fits from a handful of trace
        samples — should treat a degenerate fit as "no knee observed", not
        as a parameter estimate.
    """

    breakpoint: float
    left: LinearFit
    right: LinearFit
    r2: float
    degenerate: bool = False

    def predict(self, x) -> np.ndarray | float:
        """Evaluate the piecewise fit at ``x`` (scalar or array)."""
        xs = np.asarray(x, dtype=float)
        scalar = xs.ndim == 0
        xs = np.atleast_1d(xs)
        out = np.where(xs <= self.breakpoint, self.left.predict(xs), self.right.predict(xs))
        return float(out[0]) if scalar else out


def _validate_xy(x, y) -> tuple[np.ndarray, np.ndarray]:
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.ndim != 1 or ys.ndim != 1:
        raise FitError("x and y must be 1-dimensional")
    if xs.shape != ys.shape:
        raise FitError(f"x and y must have the same length, got {xs.shape} vs {ys.shape}")
    if xs.size < 2:
        raise FitError(f"need at least 2 points, got {xs.size}")
    return xs, ys


def linear_fit(x, y) -> LinearFit:
    """OLS fit of ``y = slope*x + intercept``.

    Degenerate inputs (all-equal x) raise :class:`~repro.errors.FitError`.
    """
    xs, ys = _validate_xy(x, y)
    if np.ptp(xs) == 0:
        raise FitError("cannot fit a line through points with constant x")
    design = np.column_stack([xs, np.ones_like(xs)])
    coeffs, *_ = np.linalg.lstsq(design, ys, rcond=None)
    slope, intercept = float(coeffs[0]), float(coeffs[1])
    fit = LinearFit(slope=slope, intercept=intercept, r2=0.0)
    r2 = r_squared(ys, fit.predict(xs))
    return LinearFit(slope=slope, intercept=intercept, r2=r2)


def _segment_sse(xs: np.ndarray, ys: np.ndarray) -> tuple[LinearFit, float]:
    """OLS fit of one segment plus its sum of squared errors.

    A segment whose x-values are all equal is fit by a horizontal line at
    the mean (slope 0), which is the right behaviour for a flat regime
    sampled at a single x.
    """
    if np.ptp(xs) == 0:
        mean = float(np.mean(ys))
        fit = LinearFit(slope=0.0, intercept=mean, r2=1.0)
        return fit, float(np.sum((ys - mean) ** 2))
    fit = linear_fit(xs, ys)
    resid = ys - fit.predict(xs)
    return fit, float(np.sum(resid**2))


def segmented_linear_fit(
    x, y, *, min_points_per_segment: int = 2, flat_left: bool = False
) -> SegmentedFit:
    """Two-segment piecewise-linear fit with an exhaustive breakpoint scan.

    Every split position leaving at least ``min_points_per_segment`` points
    on each side is evaluated; the split minimizing total SSE wins.  Data is
    sorted by x first; ties in x stay within one segment candidate boundary.

    ``flat_left`` constrains the left segment to a horizontal line — the
    PDAM's prediction for the below-saturation regime, which sharpens the
    breakpoint (= parallelism) estimate when the transition is soft.

    When every candidate breakpoint is invalid (all x-values sit on one
    side of each split — e.g. few samples with heavily repeated x), the
    result falls back to a single fit over all points, duplicated on both
    sides, with ``degenerate=True`` so callers can gate on it.  Constant-x
    data yields a flat fit at the mean y.
    """
    xs, ys = _validate_xy(x, y)
    if xs.size < 2 * min_points_per_segment:
        raise FitError(
            f"need at least {2 * min_points_per_segment} points for a segmented fit, got {xs.size}"
        )
    order = np.argsort(xs, kind="stable")
    xs, ys = xs[order], ys[order]

    best: tuple[float, int, LinearFit, LinearFit] | None = None
    for split in range(min_points_per_segment, xs.size - min_points_per_segment + 1):
        # Do not split between equal x-values: the breakpoint would be ambiguous.
        if xs[split - 1] == xs[split]:
            continue
        if flat_left:
            mean = float(np.mean(ys[:split]))
            left_fit = LinearFit(slope=0.0, intercept=mean, r2=1.0)
            left_sse = float(np.sum((ys[:split] - mean) ** 2))
        else:
            left_fit, left_sse = _segment_sse(xs[:split], ys[:split])
        right_fit, right_sse = _segment_sse(xs[split:], ys[split:])
        sse = left_sse + right_sse
        if best is None or sse < best[0]:
            best = (sse, split, left_fit, right_fit)

    if best is None:
        # No split leaves distinct x-values on both sides: return a
        # well-defined single-segment fallback instead of failing, flagged
        # so confidence gating can reject it.
        fallback, _ = _segment_sse(xs, ys)
        overall_r2 = r_squared(ys, fallback.predict(xs))
        return SegmentedFit(
            breakpoint=float(xs[-1]),
            left=fallback,
            right=fallback,
            r2=overall_r2,
            degenerate=True,
        )

    _, split, left_fit, right_fit = best
    breakpoint = float((xs[split - 1] + xs[split]) / 2.0)
    pred = np.where(
        xs <= breakpoint, left_fit.predict(xs), right_fit.predict(xs)
    )
    overall_r2 = r_squared(ys, pred)
    return SegmentedFit(breakpoint=breakpoint, left=left_fit, right=right_fit, r2=overall_r2)
