"""IO-trace analysis: summarize what a workload actually did to a device.

Every :class:`~repro.storage.device.BlockDevice` can record its IOs
(``trace=True``).  This module turns those records into the quantities the
paper's models reason about — IO-size distribution, sequentiality, seek
distances — and serializes traces to CSV for offline analysis.

Typical use::

    device = SimulatedHDD(geometry, trace=True)
    ...workload...
    stats = summarize_trace(device.trace)
    print(stats.sequential_fraction, stats.mean_io_bytes)
"""

from __future__ import annotations

import csv
import io
import math
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.storage.device import IORecord


@dataclass(frozen=True)
class TraceSummary:
    """Aggregate statistics of one IO trace."""

    n_ios: int
    n_reads: int
    n_writes: int
    total_bytes: int
    mean_io_bytes: float
    median_io_bytes: float
    max_io_bytes: int
    sequential_fraction: float     # IOs starting exactly where the last ended
    mean_seek_bytes: float         # |gap| between consecutive IOs
    # Both gap statistics need at least two IOs; a single-IO trace reports
    # them as NaN (undefined), never as a measured 0.0.
    busy_seconds: float
    mean_io_seconds: float

    @property
    def read_fraction(self) -> float:
        """Share of IOs that were reads."""
        return self.n_reads / self.n_ios if self.n_ios else 0.0

    @property
    def effective_bandwidth(self) -> float:
        """Bytes moved per busy second (0 if no time elapsed)."""
        return self.total_bytes / self.busy_seconds if self.busy_seconds else 0.0


def summarize_trace(trace: Sequence[IORecord]) -> TraceSummary:
    """Compute :class:`TraceSummary` for a recorded IO sequence."""
    if not trace:
        raise ConfigurationError("cannot summarize an empty trace")
    sizes = np.array([r.nbytes for r in trace], dtype=np.int64)
    starts = np.array([r.offset for r in trace], dtype=np.int64)
    ends = starts + sizes
    durations = np.array([r.duration for r in trace], dtype=float)
    n_reads = sum(1 for r in trace if r.kind == "read")
    if len(trace) > 1:
        gaps = starts[1:] - ends[:-1]
        sequential = float(np.mean(gaps == 0))
        mean_seek = float(np.mean(np.abs(gaps)))
    else:
        # One IO has no inter-IO gaps: both statistics are undefined, and
        # reporting 0.0 would read as "fully random, zero seek distance".
        sequential, mean_seek = math.nan, math.nan
    return TraceSummary(
        n_ios=len(trace),
        n_reads=n_reads,
        n_writes=len(trace) - n_reads,
        total_bytes=int(sizes.sum()),
        mean_io_bytes=float(sizes.mean()),
        median_io_bytes=float(np.median(sizes)),
        max_io_bytes=int(sizes.max()),
        sequential_fraction=sequential,
        mean_seek_bytes=mean_seek,
        busy_seconds=float(durations.sum()),
        mean_io_seconds=float(durations.mean()),
    )


def io_size_histogram(
    trace: Sequence[IORecord], *, bins: Iterable[int] | None = None
) -> list[tuple[str, int]]:
    """Histogram of IO sizes over power-of-two byte bins.

    Returns ``[(label, count), ...]`` for non-empty bins only.
    """
    if not trace:
        raise ConfigurationError("cannot histogram an empty trace")
    sizes = [r.nbytes for r in trace]
    if bins is None:
        hi = max(sizes)
        bins = [1 << k for k in range(9, max(10, hi.bit_length() + 1))]
    edges = sorted(set(bins))
    counts = [0] * (len(edges) + 1)
    for s in sizes:
        for i, edge in enumerate(edges):
            if s <= edge:
                counts[i] += 1
                break
        else:
            counts[-1] += 1
    out = []
    lo = 0
    for i, edge in enumerate(edges):
        if counts[i]:
            out.append((f"({lo}, {edge}]", counts[i]))
        lo = edge
    if counts[-1]:
        out.append((f"({lo}, inf)", counts[-1]))
    return out


_CSV_FIELDS = ("kind", "offset", "nbytes", "start", "end")


def trace_to_csv(trace: Sequence[IORecord]) -> str:
    """Serialize a trace to CSV text (header + one row per IO)."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    writer.writerow(_CSV_FIELDS)
    for r in trace:
        writer.writerow([r.kind, r.offset, r.nbytes, repr(r.start), repr(r.end)])
    return buf.getvalue()


def trace_from_csv(text: str) -> list[IORecord]:
    """Parse a trace serialized by :func:`trace_to_csv`."""
    reader = csv.reader(io.StringIO(text))
    header = next(reader, None)
    if header is None or tuple(header) != _CSV_FIELDS:
        raise ConfigurationError(f"bad trace CSV header: {header}")
    out = []
    for row in reader:
        if not row:
            continue
        if len(row) != len(_CSV_FIELDS):
            raise ConfigurationError(f"bad trace CSV row: {row}")
        kind, offset, nbytes, start, end = row
        if kind not in ("read", "write"):
            raise ConfigurationError(f"bad IO kind {kind!r}")
        rec = IORecord(
            kind=kind,
            offset=int(offset),
            nbytes=int(nbytes),
            start=float(start),
            end=float(end),
        )
        if rec.nbytes <= 0 or rec.end < rec.start or not math.isfinite(rec.start):
            raise ConfigurationError(f"inconsistent trace row: {row}")
        out.append(rec)
    return out
