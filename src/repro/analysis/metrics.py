"""Goodness-of-fit metrics.

The paper reports ``R^2`` for every regression in Tables 1-2 ("all within
0.1% of 1") and RMS error for the affine overlays in Figures 2-3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FitError


def _as_1d(a, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=float)
    if arr.ndim != 1:
        raise FitError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise FitError(f"{name} must be non-empty")
    return arr


def r_squared(observed, predicted) -> float:
    """Coefficient of determination ``1 - SS_res / SS_tot``.

    Returns 1.0 exactly when the prediction is perfect.  If the observations
    are constant (zero total variance), returns 1.0 for a perfect fit and
    raises otherwise, since R² is undefined there.
    """
    y = _as_1d(observed, "observed")
    f = _as_1d(predicted, "predicted")
    if y.shape != f.shape:
        raise FitError(f"shape mismatch: observed {y.shape} vs predicted {f.shape}")
    ss_res = float(np.sum((y - f) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        # Constant observations: R^2 is defined only for a (numerically)
        # perfect prediction.
        scale = float(np.sum(y**2)) + 1.0
        if ss_res <= 1e-18 * scale:
            return 1.0
        raise FitError("R^2 undefined: observations are constant but residuals are not zero")
    return 1.0 - ss_res / ss_tot


def rms_error(observed, predicted) -> float:
    """Root-mean-square error between observation and prediction."""
    y = _as_1d(observed, "observed")
    f = _as_1d(predicted, "predicted")
    if y.shape != f.shape:
        raise FitError(f"shape mismatch: observed {y.shape} vs predicted {f.shape}")
    return float(np.sqrt(np.mean((y - f) ** 2)))


def max_relative_error(observed, predicted) -> float:
    """Largest ``|obs - pred| / obs`` — the paper's "within 14%" metric.

    Relative error is undefined where the observation is zero, so those
    points are excluded from the maximum rather than poisoning the whole
    series.  A zero observation with a *nonzero* prediction is a real
    mismatch that no finite ratio can express, and raises; so does a
    series with no nonzero observation at all.
    """
    y = _as_1d(observed, "observed")
    f = _as_1d(predicted, "predicted")
    if y.shape != f.shape:
        raise FitError(f"shape mismatch: observed {y.shape} vs predicted {f.shape}")
    zero = y == 0
    if np.any(zero & (f != 0)):
        raise FitError("infinite relative error: zero observation, nonzero prediction")
    if np.all(zero):
        raise FitError("relative error undefined: all observations are zero")
    yk, fk = y[~zero], f[~zero]
    return float(np.max(np.abs(yk - fk) / np.abs(yk)))
