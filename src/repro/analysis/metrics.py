"""Goodness-of-fit metrics.

The paper reports ``R^2`` for every regression in Tables 1-2 ("all within
0.1% of 1") and RMS error for the affine overlays in Figures 2-3.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FitError


def _as_1d(a, name: str) -> np.ndarray:
    arr = np.asarray(a, dtype=float)
    if arr.ndim != 1:
        raise FitError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise FitError(f"{name} must be non-empty")
    return arr


def r_squared(observed, predicted) -> float:
    """Coefficient of determination ``1 - SS_res / SS_tot``.

    Returns 1.0 exactly when the prediction is perfect.  If the observations
    are constant (zero total variance), returns 1.0 for a perfect fit and
    raises otherwise, since R² is undefined there.
    """
    y = _as_1d(observed, "observed")
    f = _as_1d(predicted, "predicted")
    if y.shape != f.shape:
        raise FitError(f"shape mismatch: observed {y.shape} vs predicted {f.shape}")
    ss_res = float(np.sum((y - f) ** 2))
    ss_tot = float(np.sum((y - np.mean(y)) ** 2))
    if ss_tot == 0.0:
        # Constant observations: R^2 is defined only for a (numerically)
        # perfect prediction.
        scale = float(np.sum(y**2)) + 1.0
        if ss_res <= 1e-18 * scale:
            return 1.0
        raise FitError("R^2 undefined: observations are constant but residuals are not zero")
    return 1.0 - ss_res / ss_tot


def rms_error(observed, predicted) -> float:
    """Root-mean-square error between observation and prediction."""
    y = _as_1d(observed, "observed")
    f = _as_1d(predicted, "predicted")
    if y.shape != f.shape:
        raise FitError(f"shape mismatch: observed {y.shape} vs predicted {f.shape}")
    return float(np.sqrt(np.mean((y - f) ** 2)))


def max_relative_error(observed, predicted) -> float:
    """Largest ``|obs - pred| / obs`` — the paper's "within 14%" metric."""
    y = _as_1d(observed, "observed")
    f = _as_1d(predicted, "predicted")
    if y.shape != f.shape:
        raise FitError(f"shape mismatch: observed {y.shape} vs predicted {f.shape}")
    if np.any(y == 0):
        raise FitError("relative error undefined at zero observations")
    return float(np.max(np.abs(y - f) / np.abs(y)))
