"""Device-parameter and overlay fits.

Three fitting tasks appear in the paper's evaluation:

* **Table 2**: regress IO time against IO size on an HDD; the intercept is
  the setup cost ``s``, the slope the bandwidth cost ``t``, and
  ``alpha = t/s``.  The paper reports ``t`` per 4 KiB block, which we follow
  (``alpha_unit_bytes``).
* **Table 1**: segmented linear regression of completion time against the
  number of client threads on an SSD; the breakpoint estimates the device
  parallelism ``P``, and the right segment's slope gives the saturation
  throughput ``∝ PB``.
* **Figures 2-3**: overlay an affine-model prediction curve on measured
  per-operation times as a function of node size, fitting the model's
  ``alpha`` and a vertical scale (the paper reports the fitted alpha and
  the RMS error).
"""

from __future__ import annotations

import math
import warnings
from dataclasses import dataclass
from typing import Callable

import numpy as np
from scipy import optimize

from repro.analysis.metrics import r_squared, rms_error
from repro.analysis.regression import SegmentedFit, linear_fit, segmented_linear_fit
from repro.errors import FitError


@dataclass(frozen=True)
class AffineFit:
    """Affine hardware parameters recovered from an IO-size sweep (Table 2)."""

    setup_seconds: float          # s
    seconds_per_byte: float       # t (per byte)
    alpha: float                  # t/s, per `alpha_unit_bytes`
    alpha_unit_bytes: int         # the unit alpha is quoted in (paper: 4 KiB)
    r2: float

    def predict_seconds(self, nbytes) -> np.ndarray:
        """Predicted IO time ``s + t * nbytes``."""
        return self.setup_seconds + self.seconds_per_byte * np.asarray(nbytes, dtype=float)


@dataclass(frozen=True)
class PDAMFit:
    """PDAM parameters recovered from a thread-scaling sweep (Table 1)."""

    parallelism: float            # P, from the segmented-fit breakpoint
    saturation_bytes_per_second: float  # the paper's "∝ PB"
    r2: float
    segmented: SegmentedFit

    def predict_seconds(self, threads) -> np.ndarray:
        """Predicted completion time at each thread count."""
        return self.segmented.predict(threads)


def fit_affine_model(
    io_sizes_bytes, seconds, *, alpha_unit_bytes: int = 4096
) -> AffineFit:
    """Recover ``(s, t, alpha)`` from measured per-IO times (Table 2 fit).

    Parameters
    ----------
    io_sizes_bytes, seconds:
        Paired observations: each IO's size and its measured duration.
    alpha_unit_bytes:
        Unit in which ``alpha`` is quoted.  The paper uses 4 KiB blocks
        (``alpha = t[s/4K] / s``); pass 1 for a per-byte alpha.
    """
    fit = linear_fit(io_sizes_bytes, seconds)
    if fit.intercept <= 0:
        raise FitError(
            f"fitted setup cost is non-positive ({fit.intercept:.3g}); "
            "data does not look affine"
        )
    if fit.slope <= 0:
        raise FitError(
            f"fitted bandwidth cost is non-positive ({fit.slope:.3g}); "
            "data does not look affine"
        )
    alpha = fit.slope * alpha_unit_bytes / fit.intercept
    return AffineFit(
        setup_seconds=fit.intercept,
        seconds_per_byte=fit.slope,
        alpha=alpha,
        alpha_unit_bytes=alpha_unit_bytes,
        r2=fit.r2,
    )


def fit_pdam_model(threads, seconds, *, bytes_per_thread: float) -> PDAMFit:
    """Recover ``(P, PB)`` from a thread-scaling sweep (Table 1 fit).

    The experiment reads ``bytes_per_thread`` per client with ``p`` clients,
    so total data grows linearly in ``p``.  Below saturation (``p <= P``)
    completion time is flat; above it, time grows linearly with slope
    ``bytes_per_thread / (PB-throughput)``.  The segmented regression's
    breakpoint estimates ``P`` and the right slope the saturation
    throughput.
    """
    if bytes_per_thread <= 0:
        raise FitError(f"bytes_per_thread must be positive, got {bytes_per_thread}")
    # The PDAM predicts a *flat* below-saturation regime, so constrain the
    # left segment to horizontal; P is then where the saturated line crosses
    # the flat level (the knee), which is robust to a soft transition.
    seg = segmented_linear_fit(threads, seconds, flat_left=True)
    if seg.right.slope <= 0:
        raise FitError(
            f"right-segment slope is non-positive ({seg.right.slope:.3g}); "
            "device never saturated — extend the thread sweep"
        )
    saturation = bytes_per_thread / seg.right.slope
    knee = (seg.left.intercept - seg.right.intercept) / seg.right.slope
    parallelism = knee if knee > 0 else seg.breakpoint
    return PDAMFit(
        parallelism=parallelism,
        saturation_bytes_per_second=saturation,
        r2=seg.r2,
        segmented=seg,
    )


# ---------------------------------------------------------------------------
# Figure 2-3 overlay fits
# ---------------------------------------------------------------------------

def _btree_shape(B: np.ndarray, alpha: float) -> np.ndarray:
    return (1.0 + alpha * B) / np.log(B + 1.0)


def _betree_insert_shape(B: np.ndarray, alpha: float) -> np.ndarray:
    F = np.sqrt(B)
    return (F / B + alpha * F) / np.log(F)


def _betree_query_shape(B: np.ndarray, alpha: float) -> np.ndarray:
    F = np.sqrt(B)
    return (1.0 + alpha * B / F + alpha * F) / np.log(F)


_SHAPES: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "btree": _btree_shape,
    "betree_insert": _betree_insert_shape,
    "betree_query": _betree_query_shape,
}


@dataclass(frozen=True)
class OverlayFit:
    """Affine overlay line for a node-size sweep (the Figure 2/3 black lines)."""

    kind: str
    alpha: float       # fitted normalized bandwidth cost (per byte of node)
    scale: float       # vertical scale (folds in s and log(N/M))
    rms: float
    r2: float

    def predict(self, node_bytes) -> np.ndarray:
        """Predicted per-op time at each node size."""
        B = np.asarray(node_bytes, dtype=float)
        return self.scale * _SHAPES[self.kind](B, self.alpha)


def fit_affine_overlay(node_bytes, per_op_seconds, *, kind: str = "btree") -> OverlayFit:
    """Fit the affine cost-curve family to measured per-op times.

    ``kind`` selects the Table 3 cost shape: ``"btree"`` fits
    ``scale*(1+alpha*B)/ln(B+1)`` (used for Figure 2); ``"betree_insert"``
    and ``"betree_query"`` fit the ``F = sqrt(B)`` Bε-tree shapes (used for
    Figure 3).  ``alpha`` and ``scale`` are chosen by least squares.
    """
    if kind not in _SHAPES:
        raise FitError(f"unknown overlay kind {kind!r}; choose from {sorted(_SHAPES)}")
    B = np.asarray(node_bytes, dtype=float)
    y = np.asarray(per_op_seconds, dtype=float)
    if B.ndim != 1 or B.shape != y.shape:
        raise FitError("node_bytes and per_op_seconds must be 1-D and the same length")
    if B.size < 3:
        raise FitError(f"need at least 3 node sizes to fit an overlay, got {B.size}")
    if np.any(B <= 1):
        raise FitError("node sizes must exceed 1 byte")

    shape = _SHAPES[kind]

    def model(Bv: np.ndarray, log_alpha: float, log_scale: float) -> np.ndarray:
        # Clip so the optimizer's exploratory steps cannot overflow exp().
        la = min(max(log_alpha, -80.0), 80.0)
        ls = min(max(log_scale, -200.0), 200.0)
        return math.exp(ls) * shape(Bv, math.exp(la))

    # Log-parameterization keeps alpha and scale positive; the initial alpha
    # guess is the reciprocal of the largest node (the half-bandwidth scale).
    p0 = (math.log(1.0 / float(B.max())), math.log(max(float(y.mean()), 1e-300)))
    try:
        with warnings.catch_warnings():
            # Few-point sweeps can make the covariance estimate singular;
            # we only use the point estimate.
            warnings.simplefilter("ignore", optimize.OptimizeWarning)
            popt, _ = optimize.curve_fit(model, B, y, p0=p0, maxfev=20000)
    except RuntimeError as exc:  # pragma: no cover - pathological data only
        raise FitError(f"affine overlay fit did not converge: {exc}") from exc
    alpha, scale = math.exp(popt[0]), math.exp(popt[1])
    pred = scale * shape(B, alpha)
    return OverlayFit(
        kind=kind,
        alpha=alpha,
        scale=scale,
        rms=rms_error(y, pred),
        r2=r_squared(y, pred),
    )
