"""repro — a reproduction of "Small Refinements to the DAM Can Have Big
Consequences for Data-Structure Design" (Bender et al., SPAA 2019).

Three model families (:mod:`repro.models`), a simulated storage substrate
(:mod:`repro.storage`), the paper's dictionaries (:mod:`repro.trees`), the
fitting machinery (:mod:`repro.analysis`), workload generation
(:mod:`repro.workloads`), and a harness regenerating every table and
figure of the evaluation (:mod:`repro.experiments`).

Quick start::

    from repro.experiments.devices import default_hdd
    from repro.storage.stack import StorageStack
    from repro.trees import OptimizedBeTree, BeTreeConfig

    storage = StorageStack(default_hdd(), cache_bytes=16 << 20)
    tree = OptimizedBeTree(storage, BeTreeConfig(node_bytes=1 << 20, fanout=16))
    tree.insert(1, "hello")
    print(storage.io_seconds)   # simulated device time — the metric

See DESIGN.md for the system inventory and EXPERIMENTS.md for
paper-vs-measured results.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
