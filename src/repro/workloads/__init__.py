"""Workload generation: key distributions and operation streams."""

from repro.workloads.distributions import (
    UniformKeys,
    ZipfKeys,
    SequentialKeys,
    ClusteredKeys,
)
from repro.workloads.generators import (
    Operation,
    OpKind,
    random_load_pairs,
    sorted_load_pairs,
    point_query_stream,
    insert_stream,
    mixed_stream,
    range_query_stream,
)

__all__ = [
    "UniformKeys",
    "ZipfKeys",
    "SequentialKeys",
    "ClusteredKeys",
    "Operation",
    "OpKind",
    "random_load_pairs",
    "sorted_load_pairs",
    "point_query_stream",
    "insert_stream",
    "mixed_stream",
    "range_query_stream",
]
