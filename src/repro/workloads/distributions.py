"""Key distributions for workload generation.

All generators are deterministic given their seed and draw from a fixed
key universe ``[0, universe)``.  The paper's Section 7 benchmark uses
uniform random keys; Zipf and clustered distributions are provided for the
extension experiments (skew changes cache behaviour, not the IO cost model,
which is a useful sanity axis).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class _KeyDistribution:
    """Base: deterministic stream of keys from ``[0, universe)``."""

    def __init__(self, universe: int, seed: int = 0) -> None:
        if universe <= 0:
            raise ConfigurationError(f"universe must be positive, got {universe}")
        self.universe = int(universe)
        self._rng = np.random.default_rng(seed)

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` keys (dtype int64)."""
        raise NotImplementedError


class UniformKeys(_KeyDistribution):
    """Uniform random keys — the paper's Section 7 workload."""

    def sample(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.universe, size=n, dtype=np.int64)


class ZipfKeys(_KeyDistribution):
    """Zipf-skewed keys: rank ``r`` drawn with probability ``~ 1/r^theta``.

    Ranks are scattered over the universe with a fixed bijective mix so hot
    keys are not numerically adjacent.
    """

    def __init__(self, universe: int, seed: int = 0, theta: float = 1.2) -> None:
        super().__init__(universe, seed)
        if theta <= 1.0:
            raise ConfigurationError(f"theta must exceed 1 for numpy zipf, got {theta}")
        self.theta = float(theta)

    def sample(self, n: int) -> np.ndarray:
        ranks = self._rng.zipf(self.theta, size=n).astype(np.uint64)
        # Golden-ratio multiplicative scatter (wrapping uint64 multiply).
        mixed = ranks * np.uint64(0x9E3779B97F4A7C15)
        return (mixed % np.uint64(self.universe)).astype(np.int64)


class SequentialKeys(_KeyDistribution):
    """Strictly increasing keys with a fixed stride (bulk-load order)."""

    def __init__(self, universe: int, seed: int = 0, stride: int = 1) -> None:
        super().__init__(universe, seed)
        if stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")
        self.stride = int(stride)
        self._next = 0

    def sample(self, n: int) -> np.ndarray:
        out = self._next + self.stride * np.arange(n, dtype=np.int64)
        self._next = int(out[-1]) + self.stride
        if self._next > self.universe:
            raise ConfigurationError("sequential stream exhausted its universe")
        return out


class ClusteredKeys(_KeyDistribution):
    """Keys clustered around random hot spots (models temporal locality)."""

    def __init__(
        self, universe: int, seed: int = 0, clusters: int = 16, spread: int = 1024
    ) -> None:
        super().__init__(universe, seed)
        if clusters <= 0 or spread <= 0:
            raise ConfigurationError("clusters and spread must be positive")
        self.centers = self._rng.integers(0, universe, size=clusters, dtype=np.int64)
        self.spread = int(spread)

    def sample(self, n: int) -> np.ndarray:
        centers = self._rng.choice(self.centers, size=n)
        offsets = self._rng.integers(-self.spread, self.spread + 1, size=n)
        return np.clip(centers + offsets, 0, self.universe - 1).astype(np.int64)
