"""Key distributions for workload generation.

All generators are deterministic given their seed and draw from a fixed
key universe ``[0, universe)``.  The paper's Section 7 benchmark uses
uniform random keys; Zipf and clustered distributions are provided for the
extension experiments (skew changes cache behaviour, not the IO cost model,
which is a useful sanity axis).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConfigurationError


class _KeyDistribution:
    """Base: deterministic stream of keys from ``[0, universe)``."""

    def __init__(self, universe: int, seed: int = 0) -> None:
        if universe <= 0:
            raise ConfigurationError(f"universe must be positive, got {universe}")
        self.universe = int(universe)
        self._rng = np.random.default_rng(seed)

    def sample(self, n: int) -> np.ndarray:
        """Draw ``n`` keys (dtype int64)."""
        raise NotImplementedError


class UniformKeys(_KeyDistribution):
    """Uniform random keys — the paper's Section 7 workload."""

    def sample(self, n: int) -> np.ndarray:
        return self._rng.integers(0, self.universe, size=n, dtype=np.int64)


class ZipfKeys(_KeyDistribution):
    """Zipf-skewed keys: rank ``r`` drawn with probability ``~ 1/r^theta``.

    Ranks are scattered over the universe with a seeded bijection of
    ``[0, universe)`` (:meth:`scatter`) so hot keys are not numerically
    adjacent.  Bijectivity holds for *every* universe size, not just
    powers of two: the scatter is a 4-round Feistel permutation over the
    smallest even-bit power-of-two domain covering the universe, with
    cycle-walking to fold out-of-range images back in.  (A plain
    ``(r * odd_constant) % universe`` mix — the previous implementation —
    collides whenever the universe is not a power of two, silently
    merging distinct hot ranks onto one key.)
    """

    def __init__(self, universe: int, seed: int = 0, theta: float = 1.2) -> None:
        super().__init__(universe, seed)
        if theta <= 1.0:
            raise ConfigurationError(f"theta must exceed 1 for numpy zipf, got {theta}")
        self.theta = float(theta)
        # Feistel domain: an even number of bits so the halves are equal.
        bits = max((self.universe - 1).bit_length(), 2)
        bits += bits % 2
        self._half_bits = np.uint64(bits // 2)
        self._half_mask = np.uint64((1 << (bits // 2)) - 1)
        # Round keys from a dedicated stream so scatter() is a fixed
        # function of (universe, seed), independent of sampling order.
        key_rng = np.random.default_rng((seed, universe, 0x0B5))
        self._round_keys = key_rng.integers(
            0, 1 << 62, size=4, dtype=np.uint64
        )

    def _feistel(self, x: np.ndarray) -> np.ndarray:
        """One full pass of the 4-round Feistel network (a permutation)."""
        left = (x >> self._half_bits) & self._half_mask
        right = x & self._half_mask
        for k in self._round_keys:
            f = right * np.uint64(0x9E3779B97F4A7C15) + k
            f ^= f >> np.uint64(29)
            f *= np.uint64(0xBF58476D1CE4E5B9)
            f ^= f >> np.uint64(32)
            left, right = right, left ^ (f & self._half_mask)
        return (left << self._half_bits) | right

    def scatter(self, values: np.ndarray) -> np.ndarray:
        """Bijectively permute values in ``[0, universe)`` (cycle-walking).

        The Feistel pass permutes the power-of-two superset domain; any
        image landing at or beyond the universe is walked forward through
        the permutation until it falls inside.  Cycle-walking preserves
        bijectivity, and because the domain is less than ``4 * universe``
        the expected number of extra passes per value is below 3.
        """
        x = np.asarray(values, dtype=np.uint64)
        bound = np.uint64(self.universe)
        if x.size and int(x.max()) >= self.universe:
            raise ConfigurationError("scatter input outside [0, universe)")
        out = self._feistel(x)
        oob = out >= bound
        while oob.any():
            out[oob] = self._feistel(out[oob])
            oob = out >= bound
        return out.astype(np.int64)

    def sample(self, n: int) -> np.ndarray:
        ranks = self._rng.zipf(self.theta, size=n).astype(np.uint64)
        # Fold the unbounded zipf ranks (>= 1) into the universe, then
        # scatter; distinct in-range ranks stay distinct keys.
        return self.scatter((ranks - np.uint64(1)) % np.uint64(self.universe))


class SequentialKeys(_KeyDistribution):
    """Strictly increasing keys with a fixed stride (bulk-load order)."""

    def __init__(self, universe: int, seed: int = 0, stride: int = 1) -> None:
        super().__init__(universe, seed)
        if stride <= 0:
            raise ConfigurationError(f"stride must be positive, got {stride}")
        self.stride = int(stride)
        self._next = 0

    def sample(self, n: int) -> np.ndarray:
        out = self._next + self.stride * np.arange(n, dtype=np.int64)
        self._next = int(out[-1]) + self.stride
        if self._next > self.universe:
            raise ConfigurationError("sequential stream exhausted its universe")
        return out


class ClusteredKeys(_KeyDistribution):
    """Keys clustered around random hot spots (models temporal locality)."""

    def __init__(
        self, universe: int, seed: int = 0, clusters: int = 16, spread: int = 1024
    ) -> None:
        super().__init__(universe, seed)
        if clusters <= 0 or spread <= 0:
            raise ConfigurationError("clusters and spread must be positive")
        self.centers = self._rng.integers(0, universe, size=clusters, dtype=np.int64)
        self.spread = int(spread)

    def sample(self, n: int) -> np.ndarray:
        centers = self._rng.choice(self.centers, size=n)
        offsets = self._rng.integers(-self.spread, self.spread + 1, size=n)
        return np.clip(centers + offsets, 0, self.universe - 1).astype(np.int64)
