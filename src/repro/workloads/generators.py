"""Operation streams and load sets.

The Section 7 protocol the experiments follow:

    "We first inserted 16GB of key-value pairs into the database.  Then, we
    performed random inserts and random queries to about a thousandth of
    the total number of keys in the database."

:func:`random_load_pairs` builds the load set; :func:`point_query_stream`
and :func:`insert_stream` build the measured phases.  All functions are
deterministic given their seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterator

import numpy as np

from repro.errors import ConfigurationError


class OpKind(Enum):
    """Kinds of dictionary operations in a mixed stream."""

    INSERT = "insert"
    DELETE = "delete"
    QUERY = "query"
    RANGE = "range"


@dataclass(frozen=True)
class Operation:
    """One operation of a mixed stream."""

    kind: OpKind
    key: int
    value: int | None = None
    hi: int | None = None   # range queries: scan [key, hi]


def _value_for(key: int) -> int:
    """Deterministic value derived from the key (checkable in tests)."""
    return key * 2 + 1


def _sorted_distinct(arr: "np.ndarray") -> "np.ndarray":
    """Sorted distinct values of ``arr`` — np.unique minus its hash-path cost."""
    if arr.size == 0:
        return arr
    s = np.sort(arr)
    return s[np.concatenate(([True], s[1:] != s[:-1]))]


def random_load_pairs(n: int, universe: int, seed: int = 0) -> list[tuple[int, int]]:
    """``n`` distinct uniform-random keys with derived values, sorted.

    Sorted output feeds ``bulk_load``; the keys themselves are random over
    the universe so subsequent random queries hit leaves uniformly.
    """
    if n <= 0:
        raise ConfigurationError(f"n must be positive, got {n}")
    if universe < 2 * n:
        raise ConfigurationError(
            f"universe {universe} too small to draw {n} distinct keys comfortably"
        )
    rng = np.random.default_rng(seed)
    # Accumulate distinct keys with vectorized sort-dedup instead of a
    # Python set: the round-by-round draw sizes (n minus distinct-so-far)
    # and hence the RNG stream are identical, and the ascending output
    # matches sorted(set(...)) exactly.
    uniq = _sorted_distinct(rng.integers(0, universe, size=n, dtype=np.int64))
    while uniq.size < n:
        draw = rng.integers(0, universe, size=n - uniq.size, dtype=np.int64)
        uniq = _sorted_distinct(np.concatenate((uniq, draw)))
    values = uniq * 2 + 1  # vectorized _value_for
    return list(zip(uniq.tolist(), values.tolist()))


def sorted_load_pairs(n: int, stride: int = 2, seed: int = 0) -> list[tuple[int, int]]:
    """``n`` evenly spaced keys (a fully sequential load)."""
    if n <= 0 or stride <= 0:
        raise ConfigurationError("n and stride must be positive")
    return [(i * stride, _value_for(i * stride)) for i in range(n)]


def point_query_stream(
    loaded_keys: list[int], n_ops: int, seed: int = 0, hit_fraction: float = 1.0
) -> Iterator[int]:
    """Random point-query keys, drawn from the loaded set (hits) or not.

    ``hit_fraction`` controls how many queries target existing keys; misses
    draw fresh keys outside the loaded set (odd offsets of loaded keys).
    """
    if not loaded_keys:
        raise ConfigurationError("need a non-empty loaded key set")
    if not 0.0 <= hit_fraction <= 1.0:
        raise ConfigurationError(f"hit_fraction must be in [0, 1], got {hit_fraction}")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, len(loaded_keys), size=n_ops)
    hits = rng.random(n_ops) < hit_fraction
    for i_key, hit in zip(idx.tolist(), hits.tolist()):
        k = loaded_keys[i_key]
        yield k if hit else k + 1  # loaded values are even-spaced in practice


def insert_stream(universe: int, n_ops: int, seed: int = 0) -> Iterator[tuple[int, int]]:
    """Random (key, value) inserts over the universe."""
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, universe, size=n_ops, dtype=np.int64)
    values = keys * 2 + 1  # vectorized _value_for
    yield from zip(keys.tolist(), values.tolist())


def range_query_stream(
    loaded_keys: list[int], n_ops: int, span_keys: int, seed: int = 0
) -> Iterator[tuple[int, int]]:
    """Random ``(lo, hi)`` ranges covering ``~span_keys`` loaded keys each."""
    if span_keys <= 0:
        raise ConfigurationError(f"span_keys must be positive, got {span_keys}")
    rng = np.random.default_rng(seed)
    starts = rng.integers(0, max(1, len(loaded_keys) - span_keys), size=n_ops)
    for s in starts:
        lo = loaded_keys[int(s)]
        hi = loaded_keys[min(int(s) + span_keys - 1, len(loaded_keys) - 1)]
        yield lo, hi


def mixed_stream(
    loaded_keys: list[int],
    universe: int,
    n_ops: int,
    *,
    seed: int = 0,
    insert_frac: float = 0.5,
    delete_frac: float = 0.0,
    range_frac: float = 0.0,
    range_span: int = 100,
) -> Iterator[Operation]:
    """A shuffled mix of inserts, deletes, point and range queries."""
    fracs = insert_frac + delete_frac + range_frac
    if fracs > 1.0 + 1e-9:
        raise ConfigurationError("operation fractions exceed 1")
    rng = np.random.default_rng(seed)
    roll = rng.random(n_ops)
    ins_keys = rng.integers(0, universe, size=n_ops, dtype=np.int64)
    sel = rng.integers(0, len(loaded_keys), size=n_ops)
    for i in range(n_ops):
        r = roll[i]
        if r < insert_frac:
            k = int(ins_keys[i])
            yield Operation(OpKind.INSERT, k, value=_value_for(k))
        elif r < insert_frac + delete_frac:
            yield Operation(OpKind.DELETE, loaded_keys[int(sel[i])])
        elif r < fracs:
            lo = loaded_keys[int(sel[i]) % max(1, len(loaded_keys) - range_span)]
            hi_idx = min(int(sel[i]) + range_span, len(loaded_keys) - 1)
            yield Operation(OpKind.RANGE, lo, hi=loaded_keys[hi_idx])
        else:
            yield Operation(OpKind.QUERY, loaded_keys[int(sel[i])])
